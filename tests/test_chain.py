"""Chain-shared value graphs: build each checkpoint once, keep verdicts exact.

The chain path (``config.chain_graphs``, on by default) may only change
how fast stepwise validation runs — never what it decides.  These tests
pin that contract from every side: construction sharing, read-off verdict
parity against the per-pair oracle (serial and sharded, accepting and
rejecting pipelines, trusted and iteration-capped normalizations), the
fallback on chain construction failure, cache interplay, and the
``chain_stats`` telemetry.
"""

import pickle
from dataclasses import replace

import pytest

from repro.analysis import AnalysisManager
from repro.ir import parse_function
from repro.transforms import PAPER_PIPELINE, PassManager, checkpoint_chain
from repro.validator import (
    DEFAULT_CONFIG,
    ValidationCache,
    llvm_md,
    validate,
    validate_chain,
    validate_function_pipeline,
    validate_module_batch,
)
from repro.vgraph.builder import build_chain_graph, build_shared_graph

from tests.test_stepwise import BUGGY_PIPELINE

PER_PAIR = replace(DEFAULT_CONFIG, chain_graphs=False)


def _chains(module, passes=PAPER_PIPELINE, min_steps=2):
    """Yield (function, steps, versions) for every multi-step function."""
    for function in module.defined_functions():
        snapshots = PassManager(passes).run_with_snapshots(function)
        steps, versions = checkpoint_chain(function, snapshots)
        if len(steps) >= min_steps:
            yield function, steps, versions


class TestBuildChainGraph:
    def test_unchanged_subterms_exist_once(self, mini_corpus):
        checked = False
        for _, _, versions in _chains(mini_corpus):
            checked = True
            graph, summaries = build_chain_graph(versions)
            assert len(summaries) == len(versions)
            pair_nodes = 0
            for before, after in zip(versions, versions[1:]):
                pair_graph, _, _ = build_shared_graph(before, after)
                pair_nodes += pair_graph.next_id
            # The chain graph holds every version but shares unchanged
            # structure, so it is strictly smaller than re-building every
            # interior version twice.
            assert graph.next_id < pair_nodes
        assert checked

    def test_identical_versions_share_all_roots(self):
        # Loop-free bodies hash-cons completely (μ placeholders are the
        # one non-consed construction, handled by the cycle matchers), so
        # identical versions literally share their root nodes.
        fn = parse_function(
            """
            define i32 @straight(i32 %a, i32 %b) {
            entry:
              %t = add i32 %a, %b
              %u = mul i32 %t, %t
              ret i32 %u
            }
            """
        )
        graph, summaries = build_chain_graph([fn, fn, fn])
        for left, right in zip(summaries, summaries[1:]):
            assert graph.same(left.memory, right.memory)
            assert graph.same(left.result, right.result)

    def test_manager_analyses_each_version_once(self, mini_corpus):
        for _, _, versions in _chains(mini_corpus):
            manager = AnalysisManager()
            build_chain_graph(versions, manager)
            assert manager.computed == len(versions)
            assert manager.reused == 0

    def test_rejects_short_chains(self, loop_source):
        fn = parse_function(loop_source)
        from repro.errors import ValidationInternalError
        with pytest.raises(ValidationInternalError):
            validate_chain([fn])


class TestValidateChain:
    def test_trivially_equal_chain(self):
        fn = parse_function(
            """
            define i32 @straight(i32 %a, i32 %b) {
            entry:
              %t = add i32 %a, %b
              ret i32 %t
            }
            """
        )
        outcome = validate_chain([fn, fn, fn])
        assert not outcome.fallback
        assert all(r.is_success and r.reason == "trivially-equal"
                   for r in outcome.pair_results)
        assert outcome.whole_result is not None
        assert outcome.whole_result.is_success

    def test_identical_loop_versions_merge_like_per_pair(self, loop_source):
        # Loops build distinct μ placeholders per version (exactly as the
        # per-pair path does), so identical loop versions validate via
        # cycle unification — reason "equal", not "trivially-equal".
        fn = parse_function(loop_source)
        outcome = validate_chain([fn, fn, fn])
        isolated = validate(fn, fn)
        for result in outcome.pair_results:
            assert result.is_success
            assert result.reason == isolated.reason

    def test_accepts_match_isolated_pair_validation(self, mini_corpus):
        checked = False
        for _, _, versions in _chains(mini_corpus):
            outcome = validate_chain(versions, DEFAULT_CONFIG, AnalysisManager())
            if outcome.fallback:
                continue
            for index, result in enumerate(outcome.pair_results):
                isolated = validate(versions[index], versions[index + 1],
                                    DEFAULT_CONFIG)
                assert result.is_success == isolated.is_success
                assert result.reason == isolated.reason
                checked = True
        assert checked

    def test_chain_stats_shape(self, mini_corpus):
        for _, steps, versions in _chains(mini_corpus):
            outcome = validate_chain(versions)
            stats = outcome.chain_stats
            assert stats["chains"] == 1
            assert stats["chain_versions"] == len(versions) == len(steps) + 1
            assert stats["chain_pairs"] == len(steps)
            assert 0 < stats["chain_nodes_built"] <= stats["chain_nodes_created"]
            # Sharing must beat the estimated per-pair construction
            # baseline for any chain with an interior version.
            assert stats["chain_nodes_built"] < stats["chain_pair_baseline_nodes"]
            assert stats["chain_fallbacks"] == 0

    def test_pruning_scoped_rejects_are_not_trusted(self):
        # Observability pruning is root-scoped: the chain graph's goal
        # set spans every version, so the load in the LAST checkpoint
        # keeps the shared alloca observable and the dead store of the
        # FIRST pair is never pruned — the chain raw-rejects a pair an
        # isolated two-version run accepts, even at a natural fixpoint.
        # Such rejections must not be trusted (or cached): settling must
        # re-check them per-pair and recover the accepting verdict.
        store_version = parse_function(
            """
            define i32 @f(i32 %x) {
            entry:
              %t = alloca i32
              store i32 %x, i32* %t
              ret i32 %x
            }
            """
        )
        pruned_version = parse_function(
            """
            define i32 @f(i32 %x) {
            entry:
              %t = alloca i32
              ret i32 %x
            }
            """
        )
        loading_version = parse_function(
            """
            define i32 @f(i32 %x) {
            entry:
              %t = alloca i32
              %v = load i32, i32* %t
              ret i32 %v
            }
            """
        )
        versions = [store_version, pruned_version, loading_version]
        outcome = validate_chain(versions)
        assert not outcome.fallback
        # The isolated pair prunes the dead store and accepts ...
        isolated = validate(store_version, pruned_version)
        assert isolated.is_success
        # ... while the chain's raw read-off cannot (the hazard is real),
        # so its rejections must not be authoritative under a pruning-
        # enabled configuration, natural fixpoint or not.
        assert not outcome.pair_results[0].is_success
        assert not outcome.rejects_trusted
        from repro.validator.scheduler import settle_chain_results

        settled, _ = settle_chain_results(outcome, versions, DEFAULT_CONFIG)
        assert settled[0] is not None and settled[0].is_success
        assert settled[0].reason == isolated.reason

    def test_outcome_is_pickle_safe(self, mini_corpus):
        # Chain outcomes cross the process-pool boundary in the sharded
        # driver (as settled lists, but the dataclass must survive too).
        for _, _, versions in _chains(mini_corpus):
            outcome = validate_chain(versions)
            restored = pickle.loads(pickle.dumps(outcome))
            assert [r.reason for r in restored.pair_results] == \
                   [r.reason for r in outcome.pair_results]
            break


class TestChainRecordParity:
    """Chain graphs must reproduce the per-pair records byte for byte."""

    @pytest.mark.parametrize("passes", [PAPER_PIPELINE, BUGGY_PIPELINE])
    def test_serial_records_identical(self, mini_corpus, passes):
        for function in mini_corpus.defined_functions():
            _, chained = validate_function_pipeline(
                function, passes, strategy="stepwise")
            _, per_pair = validate_function_pipeline(
                function, passes, PER_PAIR, strategy="stepwise")
            assert chained.signature() == per_pair.signature()

    def test_untrusted_rejects_are_rechecked(self, mini_corpus):
        # An iteration-starved normalization cannot reach its natural
        # fixpoint, so chain rejections are not authoritative; the
        # provider must fall back to isolated per-pair verdicts and still
        # match the per-pair oracle under the same starved configuration.
        starved = replace(DEFAULT_CONFIG, max_iterations=1)
        starved_per_pair = replace(starved, chain_graphs=False)
        compared = 0
        for function in mini_corpus.defined_functions():
            _, chained = validate_function_pipeline(
                function, PAPER_PIPELINE, starved, strategy="stepwise")
            _, per_pair = validate_function_pipeline(
                function, PAPER_PIPELINE, starved_per_pair, strategy="stepwise")
            assert chained.signature() == per_pair.signature()
            compared += 1
        assert compared

    def test_module_reports_identical(self, mini_corpus):
        _, chained = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        _, per_pair = llvm_md(mini_corpus, PAPER_PIPELINE, PER_PAIR,
                              strategy="stepwise")
        assert [r.signature() for r in chained.records] == \
               [r.signature() for r in per_pair.records]
        totals = chained.chain_totals()
        assert totals["chains"] > 0
        assert totals["chain_fallbacks"] == 0
        # The report-level work counters must fold the chain's single
        # normalization in, or savings would be overstated.
        assert chained.engine_totals()["rule_invocations"] > 0

    @pytest.mark.parametrize("passes", [PAPER_PIPELINE, BUGGY_PIPELINE])
    def test_sharded_chain_records_identical(self, mini_corpus, passes):
        _, serial = llvm_md(mini_corpus, passes, strategy="stepwise")
        sharded_config = replace(DEFAULT_CONFIG, concurrency=2)
        (_, sharded), = validate_module_batch(
            [mini_corpus], passes, config=sharded_config, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in sharded.records]
        assert sharded.shard_stats["chain_items"] > 0

    def test_chain_falls_back_on_build_failure(self, mini_corpus, monkeypatch):
        # Break chain construction entirely: validate_chain degrades to
        # isolated per-pair validation and the records stay identical.
        import importlib

        validate_module = importlib.import_module("repro.validator.validate")
        from repro.errors import ValidationInternalError

        def exploding_build(versions, manager=None):
            raise ValidationInternalError("injected chain build failure")

        monkeypatch.setattr(validate_module, "build_chain_graph", exploding_build)
        checked = False
        for function in mini_corpus.defined_functions():
            _, chained = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise")
            _, per_pair = validate_function_pipeline(
                function, PAPER_PIPELINE, PER_PAIR, strategy="stepwise")
            assert chained.signature() == per_pair.signature()
            if chained.chain_stats is not None:
                assert chained.chain_stats["chain_fallbacks"] == 1
                checked = True
        assert checked


class TestChainCacheInterplay:
    def test_warm_cache_skips_chain_construction(self, mini_corpus):
        cache = ValidationCache()
        cold_records = []
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, cache=cache, strategy="stepwise")
            cold_records.append(record)
        assert any(r.chain_stats is not None for r in cold_records)
        warm_records = []
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, cache=cache, strategy="stepwise")
            warm_records.append(record)
        for cold, warm in zip(cold_records, warm_records):
            assert cold.signature() == warm.signature()
            if warm.transformed:
                assert warm.from_cache
            # A fully cached walk never builds a chain graph.
            assert warm.chain_stats is None

    def test_straggler_pairs_skip_chain_construction(self, mini_corpus):
        # A warm cache with only one uncached pair must not trigger a
        # full k-version chain build: the straggler validates in
        # isolation (chain_stats stays None, like the fully cached
        # case) and the record still matches the per-pair oracle.
        checked = False
        for function, _, versions in _chains(mini_corpus, min_steps=3):
            cache = ValidationCache()
            # Warm every adjacent pair except the last one.
            for before, after in list(zip(versions, versions[1:]))[:-1]:
                key = cache.key(before, after, DEFAULT_CONFIG)
                cache.put(key, validate(before, after, DEFAULT_CONFIG))
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, cache=cache, strategy="stepwise")
            assert record.chain_stats is None
            _, per_pair = validate_function_pipeline(
                function, PAPER_PIPELINE, PER_PAIR, strategy="stepwise")
            assert record.signature() == per_pair.signature()
            checked = True
        assert checked

    def test_chain_and_per_pair_share_cache_entries(self, mini_corpus):
        # Verdicts are mode-independent, so chain_graphs is (by design)
        # not part of the cache key: a cache warmed by the chain path
        # answers the per-pair path and vice versa.
        cache = ValidationCache()
        for function in mini_corpus.defined_functions():
            validate_function_pipeline(function, PAPER_PIPELINE,
                                       cache=cache, strategy="stepwise")
        misses_after_cold = cache.misses
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, PER_PAIR, cache=cache,
                strategy="stepwise")
            if record.transformed:
                assert record.from_cache
        assert cache.misses == misses_after_cold
