"""Tests for the IRBuilder and function/module cloning."""

from repro.ir import (
    I32,
    IRBuilder,
    Module,
    clone_function,
    clone_module,
    create_function,
    declare_function,
    parse_module,
    print_function,
    run_function,
    verify_function,
    verify_module,
)


class TestIRBuilder:
    def test_build_straightline(self):
        module = Module("m")
        fn = create_function(module, "f", I32, [I32, I32], ["a", "b"])
        builder = IRBuilder(fn.entry)
        a, b = fn.args
        total = builder.add(a, b)
        shifted = builder.shl(total, builder.const(1))
        builder.ret(shifted)
        verify_function(fn)
        assert run_function(module, "f", [2, 3]).return_value == 10

    def test_build_branches_and_phi(self):
        module = Module("m")
        fn = create_function(module, "f", I32, [I32], ["a"])
        builder = IRBuilder(fn.entry)
        (a,) = fn.args
        then_block = fn.add_block("then")
        else_block = fn.add_block("else")
        join_block = fn.add_block("join")
        cond = builder.icmp("sgt", a, builder.const(0))
        builder.cbr(cond, then_block, else_block)
        builder.position_at_end(then_block)
        doubled = builder.mul(a, builder.const(2))
        builder.br(join_block)
        builder.position_at_end(else_block)
        negated = builder.sub(builder.const(0), a)
        builder.br(join_block)
        builder.position_at_end(join_block)
        merged = builder.phi(I32, [(doubled, then_block), (negated, else_block)])
        builder.ret(merged)
        verify_function(fn)
        assert run_function(module, "f", [4]).return_value == 8
        assert run_function(module, "f", [-4]).return_value == 4

    def test_build_memory(self):
        module = Module("m")
        fn = create_function(module, "f", I32, [I32], ["a"])
        builder = IRBuilder(fn.entry)
        (a,) = fn.args
        slot = builder.alloca(I32)
        builder.store(a, slot)
        loaded = builder.load(slot)
        builder.ret(loaded)
        verify_function(fn)
        assert run_function(module, "f", [17]).return_value == 17

    def test_declare_and_call(self):
        module = Module("m")
        ext = declare_function(module, "ext", I32, [I32], attributes=["readnone"])
        fn = create_function(module, "f", I32, [I32], ["a"])
        builder = IRBuilder(fn.entry)
        call = builder.call(ext, [fn.args[0]])
        builder.ret(call)
        verify_function(fn)
        assert ext.is_declaration

    def test_unique_block_names(self):
        module = Module("m")
        fn = create_function(module, "f", I32, [])
        first = fn.add_block("bb")
        second = fn.add_block("bb")
        assert first.name != second.name


class TestCloning:
    def test_clone_is_structurally_identical(self, loop_source):
        module = parse_module(loop_source)
        fn = module.get_function("loopy")
        clone = clone_function(fn)
        verify_function(clone)
        assert print_function(clone) == print_function(fn)

    def test_clone_is_independent(self, loop_source):
        module = parse_module(loop_source)
        fn = module.get_function("loopy")
        clone = clone_function(fn)
        clone.entry.instructions.clear()
        assert fn.entry.instructions  # original untouched

    def test_clone_remaps_backedge_phis(self, loop_source):
        module = parse_module(loop_source)
        fn = module.get_function("loopy")
        clone = clone_function(fn)
        original_instructions = set(map(id, fn.instructions()))
        phi = clone.block("loop").phis()[0]
        for value, block in phi.incoming:
            assert id(value) not in original_instructions or value.ref().startswith("0")
            assert block.parent is clone

    def test_clone_module_behaviour_preserved(self, mini_corpus):
        clone = clone_module(mini_corpus)
        verify_module(clone)
        for fn in mini_corpus.defined_functions():
            args = [3] * len(fn.args)
            original = run_function(mini_corpus, fn.name, args).return_value
            copied = run_function(clone, fn.name, args).return_value
            assert original == copied

    def test_clone_new_name(self, diamond_source):
        module = parse_module(diamond_source)
        fn = module.get_function("diamond")
        clone = clone_function(fn, new_name="diamond2")
        assert clone.name == "diamond2"
        assert fn.name == "diamond"
