"""Tests for the textual IR parser and printer (including round-trips)."""

import pytest

from repro.errors import ParseError
from repro.ir import (
    Branch,
    ConstantInt,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_module,
)


class TestParserBasics:
    def test_parse_simple_function(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %x = add i32 %a, %b
              ret i32 %x
            }
            """
        )
        assert fn.name == "f"
        assert [a.name for a in fn.args] == ["a", "b"]
        assert fn.entry.instructions[0].opcode == "add"

    def test_parse_declaration_attributes(self):
        module = parse_module("declare i32 @strlen(i8* %s) readonly")
        declaration = module.get_function("strlen")
        assert declaration.is_declaration
        assert "readonly" in declaration.attributes

    def test_parse_globals(self):
        module = parse_module("@g = global i32 42\n@c = constant i32 7")
        assert module.globals["g"].initializer.value == 42
        assert module.globals["c"].is_constant

    def test_parse_all_instruction_kinds(self, memory_source, loop_source, diamond_source):
        for source in (memory_source, loop_source, diamond_source):
            module = parse_module(source)
            verify_module(module)

    def test_forward_references_resolved(self, loop_source):
        fn = parse_function(loop_source)
        phi = fn.block("loop").phis()[0]
        incoming_values = [v for v, _ in phi.incoming]
        # The %inext forward reference must point to the real instruction.
        add = [i for i in fn.block("body").instructions if i.name == "inext"][0]
        assert any(v is add for v in incoming_values)

    def test_parse_negative_and_boolean_constants(self):
        fn = parse_function(
            """
            define i1 @f(i32 %a) {
            entry:
              %x = add i32 %a, -7
              %c = icmp eq i32 %x, 0
              %d = and i1 %c, true
              ret i1 %d
            }
            """
        )
        add = fn.entry.instructions[0]
        assert isinstance(add.rhs, ConstantInt) and add.rhs.value == -7

    def test_parse_phi_gep_call(self):
        module = parse_module(
            """
            declare i32 @ext(i32 %x)
            define i32 @f(i32* %p, i32 %n) {
            entry:
              %g = getelementptr i32, i32* %p, i32 %n
              %v = load i32, i32* %g
              %c = call i32 @ext(i32 %v)
              br label %next
            next:
              %r = phi i32 [ %c, %entry ]
              ret i32 %r
            }
            """
        )
        fn = module.get_function("f")
        assert isinstance(fn.entry.instructions[0], GetElementPtr)
        assert isinstance(fn.entry.instructions[1], Load)
        assert isinstance(fn.block("next").instructions[0], Phi)


class TestParserErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_function("define i32 @f() {\nentry:\n  %x = bogus i32 1, 2\n  ret i32 %x\n}")

    def test_undefined_value(self):
        with pytest.raises(ParseError):
            parse_function("define i32 @f() {\nentry:\n  ret i32 %missing\n}")

    def test_unknown_callee(self):
        with pytest.raises(ParseError):
            parse_function(
                "define i32 @f() {\nentry:\n  %x = call i32 @nothere(i32 1)\n  ret i32 %x\n}"
            )

    def test_redefinition(self):
        with pytest.raises(ParseError):
            parse_function(
                "define i32 @f() {\nentry:\n  %x = add i32 1, 2\n  %x = add i32 3, 4\n  ret i32 %x\n}"
            )

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_module("define i32 @f() { entry: ret i32 1 } $$$")

    def test_parse_function_requires_exactly_one_definition(self):
        with pytest.raises(ParseError):
            parse_function("declare i32 @f(i32 %x)")


class TestRoundTrip:
    @pytest.mark.parametrize("fixture", ["loop_source", "diamond_source", "memory_source"])
    def test_print_parse_roundtrip(self, fixture, request):
        source = request.getfixturevalue(fixture)
        module = parse_module(source)
        text = print_module(module)
        module2 = parse_module(text)
        verify_module(module2)
        # Printing again is a fixpoint (stable text representation).
        assert print_module(module2) == text

    def test_roundtrip_generated_corpus(self, mini_corpus):
        text = print_module(mini_corpus)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert len(reparsed.defined_functions()) == len(mini_corpus.defined_functions())
        assert reparsed.instruction_count() == mini_corpus.instruction_count()

    def test_printer_names_anonymous_values(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  ret i32 %x\n}"
        )
        # Drop the name to force the printer to invent one.
        fn.entry.instructions[0].name = ""
        text = print_function(fn)
        assert "%0 = add" in text
        assert "ret i32 %0" in text
