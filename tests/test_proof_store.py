"""Tests for the SQLite proof store and the JSON store's save locking.

Covers the lazy SQLite backend (roundtrip, faulting, auto-detection,
migration from JSON, in-database eviction, WAL mode, schema and
corruption tolerance), fault injection mid-run (corruption, a locked
database, a full disk — all must degrade to the in-memory tier with
identical verdicts and an exact hit/miss ledger), the warm-run laziness
criterion, and the ``flock`` serialization of concurrent JSON savers.
"""

import json
import sqlite3
import threading
import time
from dataclasses import replace

import pytest

from repro.bench import small_test_corpus
from repro.ir import clone_function, parse_function
from repro.transforms import PAPER_PIPELINE
from repro.validator import (
    CACHE_FILE_NAME,
    SQLITE_FILE_NAME,
    SQLITE_SCHEMA,
    DEFAULT_CONFIG,
    ValidationCache,
    llvm_md,
    migrate_json_to_sqlite,
    validate,
    validate_module_batch,
)
from repro.validator.cache import _main as cache_cli

try:
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only test environment
    fcntl = None


@pytest.fixture
def pair(loop_source):
    before = parse_function(loop_source)
    return before, clone_function(before)


def _filled_cache(tmp_path, entries=6, backend="sqlite"):
    cache = ValidationCache(tmp_path, backend=backend)
    keys = []
    for index in range(entries):
        before = parse_function(
            f"define i32 @f{index}(i32 %a) {{\n"
            f"entry:\n  %t = add i32 %a, {index}\n  ret i32 %t\n}}"
        )
        after = clone_function(before)
        key = cache.key(before, after, DEFAULT_CONFIG)
        cache.put(key, validate(before, after, DEFAULT_CONFIG))
        keys.append(key)
    return cache, keys


class TestSqliteRoundtrip:
    def test_save_and_lazy_reload(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="sqlite")
        assert cache.backend == "sqlite"
        key = cache.key(before, after, DEFAULT_CONFIG)
        result = validate(before, after, DEFAULT_CONFIG)
        cache.put(key, result)
        assert cache.save() == 1
        cache.close()
        assert (tmp_path / SQLITE_FILE_NAME).exists()

        reloaded = ValidationCache(tmp_path, backend="sqlite")
        # Lazy: the store advertises its entry count without decoding
        # anything — nothing is in memory until a peek faults it in.
        assert reloaded.loaded == 1
        assert len(reloaded) == 0
        assert reloaded.stats()["store_lazy_loads"] == 0
        stored = reloaded.peek(key)
        assert stored is not None
        assert stored.is_success == result.is_success
        assert stored.reason == result.reason
        assert stored.stats == result.stats
        assert stored.graph_nodes == result.graph_nodes
        counters = reloaded.stats()
        assert counters["store_lazy_loads"] == 1
        assert counters["store_bytes_read"] > 0
        # Once faulted the entry lives in memory: no second disk read.
        assert reloaded.peek(key) is stored or reloaded.peek(key) is not None
        assert reloaded.stats()["store_lazy_loads"] == 1

    def test_incremental_flush_interval(self, tmp_path):
        from repro.validator import cache as cache_module

        cache, keys = _filled_cache(tmp_path, entries=5)
        assert cache.stats()["store_flushes"] == 0  # under the interval
        # Shrink the interval: the next put crosses it and flushes.
        original = cache_module._SQLITE_FLUSH_INTERVAL
        try:
            cache_module._SQLITE_FLUSH_INTERVAL = 3
            before = parse_function(
                "define i32 @extra(i32 %a) {\nentry:\n"
                "  %t = mul i32 %a, 3\n  ret i32 %t\n}")
            after = clone_function(before)
            cache.put(cache.key(before, after, DEFAULT_CONFIG),
                      validate(before, after, DEFAULT_CONFIG))
        finally:
            cache_module._SQLITE_FLUSH_INTERVAL = original
        assert cache.stats()["store_flushes"] == 1
        assert cache.stats()["store_bytes_written"] > 0
        # Entries flushed incrementally are durable even without save().
        cache.close()
        assert ValidationCache(tmp_path, backend="sqlite").loaded == 6

    def test_explicit_sqlite_path(self, tmp_path, pair):
        before, after = pair
        target = tmp_path / "custom.sqlite"
        cache = ValidationCache(target)
        assert cache.backend == "sqlite"
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        cache.close()
        assert target.exists()
        assert ValidationCache(target).loaded == 1

    def test_wal_mode_active(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="sqlite")
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        cache.close()
        conn = sqlite3.connect(str(tmp_path / SQLITE_FILE_NAME))
        try:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        finally:
            conn.close()

    def test_two_writers_share_one_store(self, tmp_path, pair, diamond_source):
        # WAL + busy timeout: two caches upsert into one database and
        # neither clobbers the other's entries.
        before, after = pair
        other_before = parse_function(diamond_source)
        other_after = clone_function(other_before)
        writer_a = ValidationCache(tmp_path, backend="sqlite")
        writer_b = ValidationCache(tmp_path, backend="sqlite")
        writer_a.put(writer_a.key(before, after, DEFAULT_CONFIG),
                     validate(before, after, DEFAULT_CONFIG))
        writer_b.put(writer_b.key(other_before, other_after, DEFAULT_CONFIG),
                     validate(other_before, other_after, DEFAULT_CONFIG))
        writer_a.save()
        assert writer_b.save() == 2  # sees writer_a's entry in the count
        writer_a.close()
        writer_b.close()
        assert ValidationCache(tmp_path, backend="sqlite").loaded == 2


class TestBackendSelection:
    def test_auto_prefers_existing_sqlite(self, tmp_path, pair):
        before, after = pair
        seeded = ValidationCache(tmp_path, backend="sqlite")
        seeded.put(seeded.key(before, after, DEFAULT_CONFIG),
                   validate(before, after, DEFAULT_CONFIG))
        seeded.save()
        seeded.close()
        auto = ValidationCache(tmp_path)
        assert auto.backend == "sqlite"
        assert auto.loaded == 1

    def test_auto_defaults_to_json_on_fresh_directory(self, tmp_path):
        assert ValidationCache(tmp_path).backend == "json"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cache backend"):
            ValidationCache(tmp_path, backend="bogus")
        with pytest.raises(ValueError, match="cache backend"):
            replace(DEFAULT_CONFIG, cache_backend="bogus")

    def test_config_backend_reaches_driver_cache(self, tmp_path):
        module = small_test_corpus(functions=4, seed=3)
        config = replace(DEFAULT_CONFIG, cache_dir=str(tmp_path),
                         cache_backend="sqlite")
        llvm_md(module, PAPER_PIPELINE, config, strategy="stepwise")
        assert (tmp_path / SQLITE_FILE_NAME).exists()
        assert not (tmp_path / CACHE_FILE_NAME).exists()


class TestMigration:
    def _seed_json(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="json")
        key = cache.key(before, after, DEFAULT_CONFIG)
        cache.put(key, validate(before, after, DEFAULT_CONFIG))
        cache.save()
        return key

    def test_migrate_then_auto_resolves_sqlite(self, tmp_path, pair):
        key = self._seed_json(tmp_path, pair)
        migrated, skipped, target = migrate_json_to_sqlite(tmp_path)
        assert (migrated, skipped) == (1, 0)
        assert target == tmp_path / SQLITE_FILE_NAME
        # The JSON source is untouched: the migration is retryable.
        assert (tmp_path / CACHE_FILE_NAME).exists()
        # Re-running is an idempotent, counted no-op.
        assert migrate_json_to_sqlite(tmp_path)[:2] == (0, 1)
        cache = ValidationCache(tmp_path)  # auto now prefers the sqlite file
        assert cache.backend == "sqlite"
        assert cache.peek(key) is not None

    def test_migrate_dry_run_writes_nothing(self, tmp_path, pair):
        self._seed_json(tmp_path, pair)
        migrated, skipped, target = migrate_json_to_sqlite(tmp_path,
                                                           dry_run=True)
        assert (migrated, skipped) == (1, 0)
        assert not target.exists()
        # A real run still migrates; a dry run after it reports the skip.
        assert migrate_json_to_sqlite(tmp_path)[:2] == (1, 0)
        assert migrate_json_to_sqlite(tmp_path, dry_run=True)[:2] == (0, 1)

    def test_migrate_empty_source_creates_empty_store(self, tmp_path):
        migrated, skipped, target = migrate_json_to_sqlite(tmp_path)
        assert (migrated, skipped) == (0, 0)
        assert target.exists()
        assert ValidationCache(tmp_path).backend == "sqlite"

    def test_cli_migrate(self, tmp_path, pair, capsys):
        self._seed_json(tmp_path, pair)
        assert cache_cli(["migrate", "--dry-run", str(tmp_path)]) == 0
        assert "would migrate 1 entries" in capsys.readouterr().out
        assert not (tmp_path / SQLITE_FILE_NAME).exists()
        assert cache_cli(["migrate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 1 entries" in out
        assert (tmp_path / SQLITE_FILE_NAME).exists()
        assert cache_cli(["migrate", str(tmp_path)]) == 0
        assert "(1 already present)" in capsys.readouterr().out


class TestSqliteEviction:
    def test_budget_evicts_inside_the_database(self, tmp_path):
        cache, keys = _filled_cache(tmp_path)
        cache.max_bytes = 1024
        stored = cache.save()
        assert cache.evicted > 0
        assert stored == len(keys) - cache.evicted
        assert cache.stats()["disk_evicted"] == cache.evicted
        cache.close()
        conn = sqlite3.connect(str(tmp_path / SQLITE_FILE_NAME))
        try:
            count, total = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM entries").fetchone()
        finally:
            conn.close()
        assert count == stored
        assert total <= 1024

    def test_least_recently_hit_evicted_first(self, tmp_path):
        cache, keys = _filled_cache(tmp_path)
        # Touch the first key last: it becomes the most recently hit.
        assert cache.get(keys[0], "f0") is not None
        cache.max_bytes = 1500  # room for ~2 of the ~640-byte entries
        cache.save()
        assert cache.evicted > 0
        cache.close()
        survivor = ValidationCache(tmp_path, backend="sqlite")
        assert survivor.peek(keys[0]) is not None, "hot entry must survive"

    def test_recency_stamps_continue_across_processes(self, tmp_path):
        cache, keys = _filled_cache(tmp_path)
        cache.save()
        cache.close()
        # A later process stores one fresh entry; its recency outranks
        # every earlier run's, so under pressure the old entries lose.
        reloaded = ValidationCache(tmp_path, backend="sqlite")
        before = parse_function(
            "define i32 @fresh(i32 %a) {\nentry:\n  %t = mul i32 %a, 7\n  ret i32 %t\n}")
        after = clone_function(before)
        fresh_key = reloaded.key(before, after, DEFAULT_CONFIG)
        reloaded.put(fresh_key, validate(before, after, DEFAULT_CONFIG))
        reloaded.max_bytes = 1500
        reloaded.save()
        assert reloaded.evicted > 0
        reloaded.close()
        assert ValidationCache(tmp_path, backend="sqlite").peek(fresh_key) is not None


class TestSqliteTolerance:
    def test_corrupted_file_discarded_and_recreated(self, tmp_path, pair):
        before, after = pair
        target = tmp_path / SQLITE_FILE_NAME
        target.write_bytes(b"this is not a sqlite database at all")
        cache = ValidationCache(tmp_path, backend="sqlite")
        assert cache.loaded == 0
        # The broken file was replaced by a working cold store.
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        assert cache.save() == 1
        assert cache.stats()["store_errors"] == 0
        cache.close()
        assert ValidationCache(tmp_path, backend="sqlite").loaded == 1

    def test_schema_mismatch_starts_cold(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="sqlite")
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        cache.close()
        conn = sqlite3.connect(str(tmp_path / SQLITE_FILE_NAME))
        conn.execute("PRAGMA user_version = %d" % (SQLITE_SCHEMA + 999))
        conn.commit()
        conn.close()
        reopened = ValidationCache(tmp_path, backend="sqlite")
        assert reopened.loaded == 0  # table dropped, store recreated cold
        reopened.close()

    def test_malformed_entry_skipped_without_poisoning_neighbours(
            self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="sqlite")
        key = cache.key(before, after, DEFAULT_CONFIG)
        cache.put(key, validate(before, after, DEFAULT_CONFIG))
        cache.save()
        cache.close()
        conn = sqlite3.connect(str(tmp_path / SQLITE_FILE_NAME))
        conn.execute(
            "INSERT INTO entries (key, payload, size, last_hit)"
            " VALUES ('garbage-key', 'not json', 8, 0)")
        conn.commit()
        conn.close()
        reopened = ValidationCache(tmp_path, backend="sqlite")
        assert reopened.peek(key) is not None
        # The malformed row reads as a miss, not a store fault.
        assert reopened.stats()["store_errors"] == 0
        reopened.close()


class _FaultyConnection:
    """Stands in for a sqlite3 connection whose every operation fails."""

    def __init__(self, error: BaseException) -> None:
        self.error = error

    def execute(self, *args, **kwargs):
        raise self.error

    def executemany(self, *args, **kwargs):
        raise self.error

    def commit(self):
        raise self.error

    def close(self):
        pass


class TestSqliteFaultInjection:
    """Mid-run store faults degrade to the in-memory tier losslessly:
    verdicts stay identical and the hit/miss ledger is unchanged —
    mirroring the executor pool-death tests in test_stepwise.py."""

    FAULTS = [
        pytest.param(sqlite3.DatabaseError("database disk image is malformed"),
                     id="corruption"),
        pytest.param(sqlite3.OperationalError("database is locked"),
                     id="locked-timeout"),
        pytest.param(sqlite3.OperationalError("database or disk is full"),
                     id="disk-full"),
    ]

    @pytest.mark.parametrize("error", FAULTS)
    def test_mid_run_fault_degrades_to_memory_tier(self, tmp_path, error):
        module = small_test_corpus(functions=5, seed=11)
        clean_cache = ValidationCache()
        (_, clean), = validate_module_batch(
            [module], PAPER_PIPELINE, config=DEFAULT_CONFIG,
            cache=clean_cache, strategy="stepwise")
        broken_cache = ValidationCache(tmp_path, backend="sqlite")
        # Swap the live connection for one that fails every statement:
        # the first store operation of the run discovers the fault.
        broken_cache._store.close()
        broken_cache._store._conn = _FaultyConnection(error)
        (_, report), = validate_module_batch(
            [module], PAPER_PIPELINE, config=DEFAULT_CONFIG,
            cache=broken_cache, strategy="stepwise")
        assert [r.signature() for r in clean.records] == \
               [r.signature() for r in report.records]
        counters = broken_cache.stats()
        assert counters["store_errors"] >= 1
        # Exact ledger: the broken store behaves like the in-memory tier.
        assert broken_cache.hits == clean_cache.hits
        assert broken_cache.misses == clean_cache.misses
        assert len(broken_cache) == len(clean_cache)
        # The degradation is permanent but harmless: saving is a no-op
        # that neither raises nor resurrects the connection.
        assert broken_cache.save() == 0
        assert broken_cache.stats()["store_errors"] == counters["store_errors"]

    @pytest.mark.parametrize("error", FAULTS)
    def test_faulted_store_still_answers_warm_queries_from_memory(
            self, tmp_path, error):
        module = small_test_corpus(functions=5, seed=11)
        cache = ValidationCache(tmp_path, backend="sqlite")
        cache._store.close()
        cache._store._conn = _FaultyConnection(error)
        (_, cold), = validate_module_batch(
            [module], PAPER_PIPELINE, config=DEFAULT_CONFIG,
            cache=cache, strategy="stepwise")
        assert cache.misses > 0
        # Same cache object, second sweep: the in-memory tier answers
        # everything even though the disk store is gone.
        (_, warm), = validate_module_batch(
            [module], PAPER_PIPELINE, config=DEFAULT_CONFIG,
            cache=cache, strategy="stepwise")
        assert [r.signature() for r in cold.records] == \
               [r.signature() for r in warm.records]
        assert all(r.from_cache for r in warm.records if r.transformed)


class TestWarmRunLaziness:
    def test_warm_sqlite_run_faults_fewer_entries_than_stored(self, tmp_path):
        # The batch driver's cold chain items store whole-key verdicts
        # for accepted multi-step functions; a warm run peeks only the
        # pair keys (and the whole keys of *rejected* functions), so it
        # faults in strictly fewer entries than the store holds.
        module = small_test_corpus(functions=5, seed=11)
        config = replace(DEFAULT_CONFIG, cache_dir=str(tmp_path),
                         cache_backend="sqlite")
        (_, cold), = validate_module_batch(
            [module], PAPER_PIPELINE, config, strategy="stepwise")
        assert cold.cache_stats["misses"] > 0
        (_, warm), = validate_module_batch(
            [module], PAPER_PIPELINE, config, strategy="stepwise")
        stats = warm.cache_stats
        assert stats["misses"] == 0  # >= 95% hit rate, trivially
        assert stats["hits"] > 0
        assert 0 < stats["store_lazy_loads"] < stats["disk_loaded"]
        # And the counters surface in the shard ledger too.
        assert warm.shard_stats["store_lazy_loads"] == stats["store_lazy_loads"]
        assert [r.signature() for r in cold.records] == \
               [r.signature() for r in warm.records]


@pytest.mark.skipif(fcntl is None, reason="flock requires fcntl (POSIX)")
class TestJsonSaveLocking:
    def test_lock_holder_blocks_saver(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path, backend="json")
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        lock_path = tmp_path / (CACHE_FILE_NAME + ".lock")
        holder = open(lock_path, "a+")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        saver = threading.Thread(target=cache.save)
        try:
            saver.start()
            time.sleep(0.3)
            # The save is parked on the flock: no file has appeared.
            assert saver.is_alive()
            assert not (tmp_path / CACHE_FILE_NAME).exists()
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()
        saver.join(timeout=10)
        assert not saver.is_alive()
        assert (tmp_path / CACHE_FILE_NAME).exists()

    def test_two_concurrent_savers_lose_nothing(self, tmp_path, pair,
                                                diamond_source):
        before, after = pair
        other_before = parse_function(diamond_source)
        other_after = clone_function(other_before)
        writer_a = ValidationCache(tmp_path, backend="json")
        writer_b = ValidationCache(tmp_path, backend="json")
        writer_a.put(writer_a.key(before, after, DEFAULT_CONFIG),
                     validate(before, after, DEFAULT_CONFIG))
        writer_b.put(writer_b.key(other_before, other_after, DEFAULT_CONFIG),
                     validate(other_before, other_after, DEFAULT_CONFIG))
        threads = [threading.Thread(target=writer_a.save),
                   threading.Thread(target=writer_b.save)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        # Whichever saver went second merged the first one's entry.
        merged = ValidationCache(tmp_path, backend="json")
        assert merged.loaded == 2
        payload = json.loads((tmp_path / CACHE_FILE_NAME).read_text())
        assert len(payload["entries"]) == 2
