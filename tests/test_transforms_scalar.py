"""Tests for the scalar optimization passes: instcombine, constprop, SCCP, ADCE, simplifycfg."""

from repro.ir import ConstantInt, parse_function, run_function, parse_module, verify_function
from repro.transforms import (
    adce,
    constant_propagation,
    instcombine,
    sccp,
    simplifycfg,
)
from repro.transforms.constfold import fold_icmp, fold_int_binary, is_power_of_two, log2_exact


class TestConstFoldHelpers:
    def test_basic_arithmetic(self):
        assert fold_int_binary("add", 3, 2, 32) == 5
        assert fold_int_binary("mul", 3, 2, 32) == 6
        assert fold_int_binary("sub", 3, 2, 32) == 1
        assert fold_int_binary("xor", 0b1100, 0b1010, 32) == 0b0110

    def test_wrapping(self):
        assert fold_int_binary("add", 127, 1, 8) == -128
        assert fold_int_binary("mul", 64, 4, 8) == 0

    def test_division_by_zero_returns_none(self):
        assert fold_int_binary("sdiv", 1, 0, 32) is None
        assert fold_int_binary("urem", 1, 0, 32) is None

    def test_signed_division_truncates(self):
        assert fold_int_binary("sdiv", -7, 2, 32) == -3
        assert fold_int_binary("srem", -7, 2, 32) == -1

    def test_shifts(self):
        assert fold_int_binary("shl", 1, 4, 32) == 16
        assert fold_int_binary("ashr", -8, 1, 32) == -4
        assert fold_int_binary("lshr", -8, 1, 8) == 124

    def test_icmp(self):
        assert fold_icmp("slt", -1, 0, 32) is True
        assert fold_icmp("ult", -1, 0, 32) is False  # -1 is huge unsigned
        assert fold_icmp("eq", 5, 5, 32) is True

    def test_power_of_two(self):
        assert is_power_of_two(8) and not is_power_of_two(6) and not is_power_of_two(0)
        assert log2_exact(8) == 3


class TestInstCombine:
    def test_constant_folding(self):
        fn = parse_function(
            "define i32 @f() {\nentry:\n  %x = add i32 3, 3\n  %y = mul i32 %x, 2\n  ret i32 %y\n}"
        )
        assert instcombine(fn)
        ret = fn.entry.terminator
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 12

    def test_add_self_becomes_shift(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, %a\n  ret i32 %x\n}"
        )
        instcombine(fn)
        assert fn.entry.instructions[0].opcode == "shl"

    def test_mul_power_of_two_becomes_shift(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = mul i32 %a, 8\n  ret i32 %x\n}"
        )
        instcombine(fn)
        shl = fn.entry.instructions[0]
        assert shl.opcode == "shl" and shl.rhs.value == 3

    def test_add_negative_becomes_sub(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, -5\n  ret i32 %x\n}"
        )
        instcombine(fn)
        sub = fn.entry.instructions[0]
        assert sub.opcode == "sub" and sub.rhs.value == 5

    def test_icmp_constant_moves_right(self):
        fn = parse_function(
            "define i1 @f(i32 %a) {\nentry:\n  %c = icmp sgt i32 10, %a\n  ret i1 %c\n}"
        )
        instcombine(fn)
        cmp = fn.entry.instructions[0]
        assert cmp.predicate == "slt"
        assert isinstance(cmp.rhs, ConstantInt) and cmp.rhs.value == 10

    def test_identities(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a) {
            entry:
              %x = add i32 %a, 0
              %y = mul i32 %x, 1
              %z = xor i32 %y, %y
              %w = or i32 %z, %a
              ret i32 %w
            }
            """
        )
        instcombine(fn)
        # Everything simplifies down to just returning %a.
        assert fn.entry.terminator.value is fn.args[0]

    def test_semantics_preserved(self):
        source = (
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, %a\n  %y = mul i32 %x, 4\n"
            "  %z = add i32 %y, -3\n  ret i32 %z\n}"
        )
        module = parse_module(source)
        expected = run_function(module, "f", [7]).return_value
        fn = module.get_function("f")
        instcombine(fn)
        verify_function(fn)
        assert run_function(module, "f", [7]).return_value == expected

    def test_constprop_folds_constants_only(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 2, 3\n  %y = add i32 %a, %a\n  ret i32 %x\n}"
        )
        constant_propagation(fn)
        assert isinstance(fn.entry.terminator.value, ConstantInt)
        # The non-constant add is untouched (no canonicalization in constprop).
        remaining = [i for i in fn.entry.instructions if i.opcode == "add"]
        assert remaining and remaining[0].opcode == "add"


class TestSCCP:
    def test_propagates_through_branches(self):
        fn = parse_function(
            """
            define i32 @f() {
            entry:
              %c = icmp eq i32 1, 1
              br i1 %c, label %then, label %else
            then:
              br label %join
            else:
              br label %join
            join:
              %x = phi i32 [ 7, %then ], [ 9, %else ]
              ret i32 %x
            }
            """
        )
        assert sccp(fn)
        verify_function(fn)
        ret = [b for b in fn.blocks if b.terminator.opcode == "ret"][0].terminator
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 7

    def test_phi_of_equal_constants(self):
        fn = parse_function(
            """
            define i32 @f(i1 %c) {
            entry:
              br i1 %c, label %a, label %b
            a:
              br label %join
            b:
              br label %join
            join:
              %x = phi i32 [ 4, %a ], [ 4, %b ]
              %y = add i32 %x, 1
              ret i32 %y
            }
            """
        )
        sccp(fn)
        verify_function(fn)
        ret = fn.block("join").terminator
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 5

    def test_removes_unreachable_blocks(self):
        fn = parse_function(
            """
            define i32 @f() {
            entry:
              br i1 false, label %dead, label %live
            dead:
              br label %live
            live:
              %x = phi i32 [ 1, %entry ], [ 2, %dead ]
              ret i32 %x
            }
            """
        )
        sccp(fn)
        verify_function(fn)
        assert all(b.name != "dead" for b in fn.blocks)

    def test_overdefined_values_untouched(self, diamond_source):
        fn = parse_function(diamond_source)
        before = len(list(fn.instructions()))
        sccp(fn)
        verify_function(fn)
        assert len(list(fn.instructions())) == before

    def test_semantics_preserved(self, mini_corpus):
        from repro.ir import clone_module, Interpreter

        clone = clone_module(mini_corpus)
        for fn in clone.defined_functions():
            sccp(fn)
            verify_function(fn)
        for fn in mini_corpus.defined_functions():
            args = [5] * len(fn.args)
            before = Interpreter(mini_corpus).run(fn, args).return_value
            after = Interpreter(clone).run(clone.get_function(fn.name), args).return_value
            assert before == after


class TestADCE:
    def test_removes_dead_arithmetic(self):
        fn = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %dead = mul i32 %a, 100\n  %live = add i32 %a, 1\n  ret i32 %live\n}"
        )
        assert adce(fn)
        assert all(i.name != "dead" for i in fn.instructions())
        assert any(i.name == "live" for i in fn.instructions())

    def test_keeps_stores_and_calls(self):
        fn = parse_function(
            """
            declare i32 @effect(i32 %x)
            define i32 @f(i32 %a) {
            entry:
              %p = alloca i32
              store i32 %a, i32* %p
              %c = call i32 @effect(i32 %a)
              ret i32 %a
            }
            """
            if False
            else """
            define i32 @f(i32 %a) {
            entry:
              %p = alloca i32
              store i32 %a, i32* %p
              ret i32 %a
            }
            """
        )
        adce(fn)
        assert any(i.opcode == "store" for i in fn.instructions())

    def test_removes_dead_phi_chains(self, diamond_source):
        fn = parse_function(diamond_source)
        # Make the phi dead by returning a constant instead.
        from repro.ir import const_int

        ret = fn.block("join").terminator
        ret.operands[0] = const_int(1)
        adce(fn)
        assert not fn.block("join").phis()
        assert not fn.block("then").instructions[:-1]  # %x removed too

    def test_idempotent(self, mini_corpus):
        from repro.ir import clone_module

        clone = clone_module(mini_corpus)
        for fn in clone.defined_functions():
            adce(fn)
            assert not adce(fn)


class TestSimplifyCFG:
    def test_folds_constant_branch(self):
        fn = parse_function(
            """
            define i32 @f() {
            entry:
              br i1 true, label %a, label %b
            a:
              ret i32 1
            b:
              ret i32 2
            }
            """
        )
        assert simplifycfg(fn)
        verify_function(fn)
        assert all(b.name != "b" for b in fn.blocks)

    def test_merges_straightline_blocks(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a) {
            entry:
              %x = add i32 %a, 1
              br label %next
            next:
              %y = mul i32 %x, 2
              ret i32 %y
            }
            """
        )
        simplifycfg(fn)
        verify_function(fn)
        assert len(fn.blocks) == 1
        assert run_function(fn.parent, "f", [3]).return_value == 8 if fn.parent else True

    def test_single_entry_phi_removed(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a) {
            entry:
              br label %next
            next:
              %x = phi i32 [ %a, %entry ]
              ret i32 %x
            }
            """
        )
        simplifycfg(fn)
        verify_function(fn)
        assert not any(i.opcode == "phi" for i in fn.instructions())
