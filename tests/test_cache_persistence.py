"""Tests for the persistent on-disk ValidationCache backend.

Covers the roundtrip (save → load → all hits), content/config keyed
invalidation, tolerance of corrupted or version-mismatched cache files,
merge semantics (in-memory and save-time), and that the sharded batch
driver reports worker-answered queries in the cache totals without double
counting.
"""

import json
from dataclasses import replace

import pytest

from repro.bench import small_test_corpus
from repro.ir import clone_function, parse_function
from repro.transforms import PAPER_PIPELINE
from repro.validator import (
    CACHE_FILE_NAME,
    CACHE_SCHEMA,
    DEFAULT_CONFIG,
    ValidationCache,
    llvm_md,
    validate,
    validate_module_batch,
)

SHARDED = replace(DEFAULT_CONFIG, concurrency=2)


@pytest.fixture
def pair(loop_source):
    before = parse_function(loop_source)
    return before, clone_function(before)


class TestRoundtrip:
    def test_save_and_reload(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path)
        key = cache.key(before, after, DEFAULT_CONFIG)
        result = validate(before, after, DEFAULT_CONFIG)
        cache.put(key, result)
        written = cache.save()
        assert written == 1
        assert (tmp_path / CACHE_FILE_NAME).exists()

        reloaded = ValidationCache(tmp_path)
        assert reloaded.loaded == 1
        stored = reloaded.peek(key)
        assert stored is not None
        assert stored.is_success == result.is_success
        assert stored.reason == result.reason
        assert stored.stats == result.stats
        assert stored.graph_nodes == result.graph_nodes

    def test_explicit_json_path(self, tmp_path, pair):
        before, after = pair
        target = tmp_path / "custom.json"
        cache = ValidationCache(target)
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        assert target.exists()
        assert ValidationCache(target).loaded == 1

    def test_save_if_dirty_skips_clean_cache(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path)
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        assert cache.save_if_dirty() == 1
        # No changes since the save: nothing to write.
        assert cache.save_if_dirty() == 0
        # A pure-memory cache has nowhere to save to.
        assert ValidationCache().save_if_dirty() == 0

    def test_llvm_md_warm_run_answers_from_disk(self, tmp_path):
        module = small_test_corpus(functions=5, seed=11)
        config = replace(DEFAULT_CONFIG, cache_dir=str(tmp_path))
        _, cold = llvm_md(module, PAPER_PIPELINE, config, strategy="stepwise")
        assert cold.cache_stats["misses"] > 0
        assert (tmp_path / CACHE_FILE_NAME).exists()
        _, warm = llvm_md(module, PAPER_PIPELINE, config, strategy="stepwise")
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["disk_loaded"] == cold.cache_stats["entries"]
        assert warm.cache_hits == sum(1 for r in warm.records if r.transformed)
        # Verdicts are unchanged by where the answers came from.
        assert [r.signature() for r in cold.records] == \
               [r.signature() for r in warm.records]


class TestInvalidation:
    def test_content_change_misses(self, pair):
        before, after = pair
        cache = ValidationCache()
        key = cache.key(before, after, DEFAULT_CONFIG)
        mutated = clone_function(after)
        mutated.block("body").instructions[0].opcode = "sub"
        assert cache.key(before, mutated, DEFAULT_CONFIG) != key

    def test_config_change_misses(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path)
        key = cache.key(before, after, DEFAULT_CONFIG)
        cache.put(key, validate(before, after, DEFAULT_CONFIG))
        cache.save()
        reloaded = ValidationCache(tmp_path)
        for changed in (DEFAULT_CONFIG.with_rules(("phi",)),
                        DEFAULT_CONFIG.with_engine("fullscan"),
                        replace(DEFAULT_CONFIG, matcher="simple"),
                        replace(DEFAULT_CONFIG, max_iterations=3),
                        replace(DEFAULT_CONFIG, recursion_limit=10_000)):
            assert reloaded.peek(reloaded.key(before, after, changed)) is None
        # Sharding/persistence knobs must NOT invalidate: they cannot
        # change a verdict.
        for same in (replace(DEFAULT_CONFIG, concurrency=4),
                     replace(DEFAULT_CONFIG, cache_dir="/elsewhere"),
                     replace(DEFAULT_CONFIG, cache_backend="sqlite"),
                     replace(DEFAULT_CONFIG, analysis_cache_size=2)):
            assert reloaded.peek(reloaded.key(before, after, same)) is not None


class TestCorruptionTolerance:
    def test_corrupted_file_starts_cold(self, tmp_path, pair):
        before, after = pair
        target = tmp_path / CACHE_FILE_NAME
        target.write_text("{ not json at all", encoding="utf-8")
        cache = ValidationCache(tmp_path)
        assert cache.loaded == 0 and len(cache) == 0
        # And the broken file is replaced by a clean save.
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        assert cache.save() == 1
        assert ValidationCache(tmp_path).loaded == 1

    def test_schema_mismatch_ignored(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path)
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        target = tmp_path / CACHE_FILE_NAME
        payload = json.loads(target.read_text())
        payload["schema"] = CACHE_SCHEMA + 999
        target.write_text(json.dumps(payload), encoding="utf-8")
        assert ValidationCache(tmp_path).loaded == 0

    def test_wrong_toplevel_shape_ignored(self, tmp_path):
        (tmp_path / CACHE_FILE_NAME).write_text('["a", "list"]', encoding="utf-8")
        assert ValidationCache(tmp_path).loaded == 0
        (tmp_path / CACHE_FILE_NAME).write_text(
            json.dumps({"schema": CACHE_SCHEMA, "entries": "nope"}), encoding="utf-8")
        assert ValidationCache(tmp_path).loaded == 0

    def test_malformed_entry_skipped_without_poisoning_neighbours(self, tmp_path, pair):
        before, after = pair
        cache = ValidationCache(tmp_path)
        cache.put(cache.key(before, after, DEFAULT_CONFIG),
                  validate(before, after, DEFAULT_CONFIG))
        cache.save()
        target = tmp_path / CACHE_FILE_NAME
        payload = json.loads(target.read_text())
        payload["entries"]["garbage-key"] = {"bad": "entry"}
        target.write_text(json.dumps(payload), encoding="utf-8")
        assert ValidationCache(tmp_path).loaded == 1

    def test_missing_file_is_fine(self, tmp_path):
        cache = ValidationCache(tmp_path / "never" / "created")
        assert cache.loaded == 0 and len(cache) == 0


class TestMerge:
    def test_in_memory_merge(self, pair, diamond_source):
        before, after = pair
        other_before = parse_function(diamond_source)
        other_after = clone_function(other_before)
        first = ValidationCache()
        second = ValidationCache()
        key_a = first.key(before, after, DEFAULT_CONFIG)
        first.put(key_a, validate(before, after, DEFAULT_CONFIG))
        key_b = second.key(other_before, other_after, DEFAULT_CONFIG)
        second.put(key_b, validate(other_before, other_after, DEFAULT_CONFIG))
        second.put(key_a, validate(before, after, DEFAULT_CONFIG))
        assert first.merge(second) == 1  # key_a already present, key_b adopted
        assert first.peek(key_b) is not None

    def test_save_merges_with_concurrent_writer(self, tmp_path, pair, diamond_source):
        # Two caches share one directory; the second save must not clobber
        # what the first one stored.
        before, after = pair
        other_before = parse_function(diamond_source)
        other_after = clone_function(other_before)
        writer_a = ValidationCache(tmp_path)
        writer_b = ValidationCache(tmp_path)
        writer_a.put(writer_a.key(before, after, DEFAULT_CONFIG),
                     validate(before, after, DEFAULT_CONFIG))
        writer_b.put(writer_b.key(other_before, other_after, DEFAULT_CONFIG),
                     validate(other_before, other_after, DEFAULT_CONFIG))
        writer_a.save()
        assert writer_b.save() == 2  # adopted writer_a's entry while saving
        assert ValidationCache(tmp_path).loaded == 2


class TestShardedPersistence:
    """Worker-merge correctness and no double counting through the pool."""

    def test_batch_worker_results_merge_into_persistent_cache(self, tmp_path):
        module = small_test_corpus(functions=6, seed=11)
        config = replace(SHARDED, cache_dir=str(tmp_path))
        (_, cold), = validate_module_batch([module], config=config, strategy="stepwise")
        assert cold.shard_stats["distinct_pairs"] > 0
        (_, warm), = validate_module_batch([module], config=config, strategy="stepwise")
        # Everything the workers proved was merged and persisted: the warm
        # run validates nothing anew, in the pool or inline.
        assert warm.shard_stats["distinct_pairs"] == 0
        assert warm.shard_stats["inline_validations"] == 0
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hits"] > 0
        assert [r.signature() for r in cold.records] == \
               [r.signature() for r in warm.records]

    def test_no_double_counting(self, tmp_path):
        module = small_test_corpus(functions=6, seed=11)
        config = replace(SHARDED, cache_dir=str(tmp_path))
        cache = ValidationCache(tmp_path)
        validate_module_batch([module], config=config, cache=cache, strategy="stepwise")
        # Each distinct consumed query is counted exactly once as a miss or
        # a hit: total lookups == queries the strategy runners consumed.
        consumed = cache.hits + cache.misses
        transformed_queries = 0
        for function in module.defined_functions():
            transformed_queries += 1  # at least the final/whole aggregation
        assert consumed >= transformed_queries
        # Every *fresh* validation was counted as at most one miss.
        assert cache.misses <= len(cache)

    def test_serial_and_sharded_share_cache_entries(self, tmp_path):
        module = small_test_corpus(functions=6, seed=11)
        serial_config = replace(DEFAULT_CONFIG, cache_dir=str(tmp_path))
        _, serial = llvm_md(module, PAPER_PIPELINE, serial_config, strategy="stepwise")
        sharded_config = replace(SHARDED, cache_dir=str(tmp_path))
        (_, warm), = validate_module_batch(
            [module], config=sharded_config, strategy="stepwise")
        # The sharded driver keys pairs identically to the serial driver,
        # so it can consume a serially-built cache wholesale.
        assert warm.shard_stats["distinct_pairs"] == 0
        assert warm.cache_stats["misses"] == 0


class TestSizeBoundedBackend:
    """config.cache_max_bytes: least-recently-hit eviction at save time."""

    def _filled_cache(self, tmp_path, entries=6):
        cache = ValidationCache(tmp_path)
        keys = []
        for index in range(entries):
            before = parse_function(
                f"define i32 @f{index}(i32 %a) {{\n"
                f"entry:\n  %t = add i32 %a, {index}\n  ret i32 %t\n}}"
            )
            after = clone_function(before)
            key = cache.key(before, after, DEFAULT_CONFIG)
            cache.put(key, validate(before, after, DEFAULT_CONFIG))
            keys.append(key)
        return cache, keys

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path)
        cache.save()
        assert cache.evicted == 0
        assert cache.stats()["disk_evicted"] == 0

    def test_budget_evicts_down_to_size(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        cache.max_bytes = 2048
        stored = cache.save()
        assert cache.evicted > 0
        assert stored == len(keys) - cache.evicted
        assert cache.stats()["disk_evicted"] == cache.evicted
        payload = json.loads((tmp_path / CACHE_FILE_NAME).read_text())
        assert len(payload["entries"]) == stored
        # The serialized file — envelope, escaping and all — respects
        # the byte budget.
        assert len((tmp_path / CACHE_FILE_NAME).read_text()) <= 2048

    def test_least_recently_hit_evicted_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        # Touch the first key last: it becomes the most recently hit.
        assert cache.get(keys[0], "f0") is not None
        cache.max_bytes = 700
        cache.save()
        assert cache.peek(keys[0]) is not None, "hot entry must survive"
        assert cache.evicted > 0

    def test_loaded_entries_rank_oldest(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        cache.save()
        # A new process loads everything from disk (no recency), then
        # stores one fresh entry; under pressure the fresh entry wins.
        reloaded = ValidationCache(tmp_path)
        before = parse_function(
            "define i32 @fresh(i32 %a) {\nentry:\n  %t = mul i32 %a, 7\n  ret i32 %t\n}")
        after = clone_function(before)
        fresh_key = reloaded.key(before, after, DEFAULT_CONFIG)
        reloaded.put(fresh_key, validate(before, after, DEFAULT_CONFIG))
        reloaded.max_bytes = 700
        reloaded.save()
        assert reloaded.evicted > 0
        assert reloaded.peek(fresh_key) is not None

    def test_config_budget_reaches_driver_cache(self, tmp_path):
        module = small_test_corpus(functions=4, seed=3)
        config = replace(DEFAULT_CONFIG, cache_dir=str(tmp_path),
                         cache_max_bytes=512)
        _, report = llvm_md(module, PAPER_PIPELINE, config, strategy="stepwise")
        stats = report.cache_stats
        assert stats is not None and "disk_evicted" in stats
        assert stats["disk_evicted"] > 0  # a real sweep far exceeds 512 bytes
        # Eviction costs re-validation only, never correctness: a second
        # sweep over the evicted cache reproduces identical records.
        _, again = llvm_md(module, PAPER_PIPELINE, config, strategy="stepwise")
        assert [r.signature() for r in report.records] == \
               [r.signature() for r in again.records]
