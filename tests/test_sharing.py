"""Targeted coverage for μ-cycle unification and its driver, merge_cycles.

Pins the behaviors the incremental normalization engine depends on: the
``max_pairs`` attempt budget really truncates, the candidate-set
restriction is lifted as soon as a round merges (merges reshape the graph
around every μ), structural signatures are invariant under node-id
renumbering (they group candidate μ pairs, so id-dependence would make
matching non-deterministic), and the unification walk is iterative — it
must not depend on the Python recursion limit, because validation no
longer raises it for the normalization phase.
"""

import sys

from repro.vgraph.graph import ValueGraph
from repro.vgraph.sharing import merge_cycles, unify


def _counting_loop(graph: ValueGraph, start: int, stride: int) -> int:
    """μ for ``x = start; loop: x = x + stride`` — equal iff args equal."""
    mu = graph.make_mu()
    body = graph.make("binop", "add", [mu, graph.const(stride)])
    graph.set_args(mu, [graph.const(start), body])
    return mu


class TestMaxPairsBudget:
    def test_zero_budget_attempts_nothing(self):
        graph = ValueGraph()
        mu1 = _counting_loop(graph, 0, 1)
        mu2 = _counting_loop(graph, 0, 1)
        assert merge_cycles(graph, [mu1, mu2], max_pairs=0) == 0
        assert not graph.same(mu1, mu2)

    def test_budget_truncates_attempts(self):
        # Ten equivalent cycles need many pairwise attempts to merge into
        # one class; a budget of one attempt per round merges strictly
        # fewer of them than an unbounded run.
        def build():
            graph = ValueGraph()
            return graph, [_counting_loop(graph, 0, 1) for _ in range(10)]

        graph_bounded, mus_bounded = build()
        bounded = merge_cycles(graph_bounded, list(mus_bounded), max_pairs=1)
        graph_free, mus_free = build()
        unbounded = merge_cycles(graph_free, list(mus_free))
        assert unbounded > bounded
        canonical = {graph_free.resolve(mu) for mu in mus_free}
        assert len(canonical) == 1  # unbounded run merges all ten

    def test_bounded_run_still_makes_progress(self):
        graph = ValueGraph()
        mus = [_counting_loop(graph, 0, 1) for _ in range(4)]
        assert merge_cycles(graph, list(mus), max_pairs=1) > 0


class TestCandidateRestriction:
    def test_no_candidate_mu_is_a_cheap_no_op(self):
        graph = ValueGraph()
        mu1 = _counting_loop(graph, 0, 1)
        mu2 = _counting_loop(graph, 0, 1)
        plain = graph.const(99)
        assert merge_cycles(graph, [mu1, mu2], candidates={plain}) == 0
        assert not graph.same(mu1, mu2)

    def test_candidate_pairs_are_attempted(self):
        graph = ValueGraph()
        mu1 = _counting_loop(graph, 0, 1)
        mu2 = _counting_loop(graph, 0, 1)
        assert merge_cycles(graph, [mu1, mu2], candidates={mu1}) > 0
        assert graph.same(mu1, mu2)

    def test_restriction_lifted_after_a_merging_round(self):
        # Two unrelated equivalence classes: A (strides 1) and B
        # (strides 2).  Only an A-μ is a candidate, so round one can only
        # merge the A pair — but a merging round lifts the restriction,
        # and the B pair must merge in a later round of the same call.
        graph = ValueGraph()
        a1 = _counting_loop(graph, 0, 1)
        a2 = _counting_loop(graph, 0, 1)
        b1 = _counting_loop(graph, 5, 2)
        b2 = _counting_loop(graph, 5, 2)
        merged = merge_cycles(graph, [a1, a2, b1, b2], candidates={a1})
        assert merged > 0
        assert graph.same(a1, a2)
        assert graph.same(b1, b2), "candidate restriction must lift after a merge"
        assert not graph.same(a1, b1)


class TestSignatureStability:
    def test_signatures_stable_across_node_id_renumbering(self):
        # The same structure built in two different orders gets different
        # node ids; the iterated structural hash must not see them.
        def build(reversed_order: bool) -> tuple:
            graph = ValueGraph()
            if reversed_order:
                # Burn some ids first so every node is renumbered.
                for i in range(7):
                    graph.const(100 + i)
            mu = _counting_loop(graph, 0, 1)
            term = graph.make("binop", "mul", [mu, graph.const(3)])
            return graph, mu, term

        graph_a, mu_a, term_a = build(False)
        graph_b, mu_b, term_b = build(True)
        assert mu_a != mu_b or term_a != term_b  # ids actually differ
        signatures_a = graph_a.signatures(rounds=4, roots=[term_a])
        signatures_b = graph_b.signatures(rounds=4, roots=[term_b])
        assert signatures_a[graph_a.resolve(term_a)] == \
               signatures_b[graph_b.resolve(term_b)]
        assert signatures_a[graph_a.resolve(mu_a)] == \
               signatures_b[graph_b.resolve(mu_b)]

    def test_mu_scoped_signatures_match_root_scoped(self):
        # merge_cycles seeds signatures from the μ population; a node's
        # signature depends only on its descendants, so the values must
        # agree with a computation seeded from the enclosing roots.
        graph = ValueGraph()
        mu = _counting_loop(graph, 0, 1)
        root = graph.make("binop", "mul", [mu, graph.const(3)])
        from_root = graph.signatures(rounds=3, roots=[root])
        from_mu = graph.signatures(rounds=3, roots=[mu])
        assert from_mu[graph.resolve(mu)] == from_root[graph.resolve(mu)]


class TestIterativeUnify:
    def _deep_pair(self, depth: int):
        graph = ValueGraph()

        def chain() -> int:
            # Rooting each chain in its own (non-hash-consed) μ keeps the
            # two structures distinct — plain acyclic chains would be
            # collapsed into one node by construction-time hash-consing.
            mu = graph.make_mu()
            node = mu
            for _ in range(depth):
                node = graph.make("binop", "add", [node, graph.const(1)])
            graph.set_args(mu, [graph.const(0), node])
            return mu

        return graph, chain(), chain()

    def test_deep_unify_under_tiny_recursion_limit(self):
        graph, left, right = self._deep_pair(depth=4000)
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200)
        try:
            mapping = unify(graph, left, right)
        finally:
            sys.setrecursionlimit(old_limit)
        assert mapping is not None

    def test_deep_mismatch_under_tiny_recursion_limit(self):
        graph, left, _ = self._deep_pair(depth=4000)
        other = graph.make_mu()
        node = other
        for index in range(4000):
            opcode = "add" if index != 1234 else "sub"
            node = graph.make("binop", opcode, [node, graph.const(1)])
        graph.set_args(other, [graph.const(0), node])
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200)
        try:
            assert unify(graph, left, other) is None
        finally:
            sys.setrecursionlimit(old_limit)

    def test_mapping_matches_recursive_postorder(self):
        # The explicit-stack walk must record child pairs before their
        # parents (the order redirects are applied in merge_cycles).
        graph = ValueGraph()
        mu1 = _counting_loop(graph, 0, 1)
        mu2 = _counting_loop(graph, 0, 1)
        mapping = unify(graph, mu1, mu2)
        assert mapping is not None
        order = list(mapping)
        assert order[-1] == graph.resolve(mu2), "μ pair must be recorded last"
