"""Tests for the value graph: hash-consing, rules, sharing, partitioning, gates."""

import sys

import pytest

from repro.gated import GateAnalysis, MemoryEffects, TRUE, make_and, make_or
from repro.gated.gates import CondGate, FalseGate, TrueGate
from repro.ir import parse_function
from repro.vgraph import (
    ValueGraph,
    build_shared_graph,
    merge_by_partition,
    merge_cycles,
    refine_partition,
    unify,
)
from repro.vgraph.galias import GraphAliasResult, graph_alias
from repro.vgraph.normalize import Normalizer
from repro.vgraph.rules import RULE_GROUPS, rules_for


class TestValueGraphBasics:
    def test_hash_consing(self):
        graph = ValueGraph()
        a = graph.const(5)
        b = graph.const(5)
        c = graph.const(6)
        assert a == b
        assert a != c
        x = graph.make("binop", "add", [a, c])
        y = graph.make("binop", "add", [b, c])
        assert x == y

    def test_redirect_and_resolve(self):
        graph = ValueGraph()
        a, b = graph.const(1), graph.const(2)
        node = graph.make("binop", "add", [a, b])
        replacement = graph.const(3)
        assert graph.redirect(node, replacement)
        assert graph.same(node, replacement)
        assert not graph.redirect(node, replacement)  # already merged

    def test_make_after_redirect_reuses_canonical(self):
        graph = ValueGraph()
        a, b = graph.const(1), graph.const(2)
        node = graph.make("binop", "add", [a, b])
        graph.redirect(node, graph.const(3))
        again = graph.make("binop", "mul", [node, a])
        resolved_args = graph.resolve_args(graph.node(again))
        assert resolved_args[0] == graph.resolve(graph.const(3))

    def test_boolean_constructors_simplify(self):
        graph = ValueGraph()
        cond = graph.make("icmp", "slt", [graph.const(1), graph.const(2)])
        assert graph.and_(graph.true(), cond) == graph.resolve(cond)
        assert graph.or_(graph.false(), cond) == graph.resolve(cond)
        assert graph.and_(graph.false(), cond) == graph.false()
        assert graph.not_(graph.not_(cond)) == graph.resolve(cond)
        assert graph.not_(graph.true()) == graph.false()

    def test_maximize_sharing_merges_duplicates(self):
        graph = ValueGraph()
        a = graph.const(1)
        # Two structurally equal μ-free chains created independently.
        x = graph.make("binop", "add", [a, graph.const(2)])
        y = graph.make("binop", "mul", [x, x])
        # Simulate a rewrite creating an identical copy under different ids.
        x2 = graph.make("binop", "add", [graph.const(2), a])  # different order => different node
        assert x != x2
        graph.maximize_sharing()
        assert graph.live_node_count() >= 3

    def test_depends_on_mu(self):
        graph = ValueGraph()
        mu = graph.make_mu()
        graph.set_args(mu, [graph.const(0), graph.const(1)])
        wrapped = graph.make("binop", "add", [mu, graph.const(5)])
        plain = graph.make("binop", "add", [graph.const(1), graph.const(5)])
        assert graph.depends_on_mu(wrapped)
        assert not graph.depends_on_mu(plain)

    def test_signatures_stable_under_structure(self):
        graph = ValueGraph()
        a = graph.make("param", 0)
        x = graph.make("binop", "add", [a, graph.const(1)])
        y = graph.make("binop", "add", [a, graph.const(1)])
        signatures = graph.signatures()
        assert signatures[graph.resolve(x)] == signatures[graph.resolve(y)]

    def test_format_node_bounded(self):
        graph = ValueGraph()
        mu = graph.make_mu()
        inc = graph.make("binop", "add", [mu, graph.const(1)])
        graph.set_args(mu, [graph.const(0), inc])
        text = graph.format_node(mu)
        assert "mu" in text and "add" in text


class TestGraphAlias:
    def test_allocas_and_globals(self):
        graph = ValueGraph()
        a = graph.make("alloca", "p")
        b = graph.make("alloca", "q")
        g = graph.make("global", "g0")
        param = graph.make("param", 0)
        assert graph_alias(graph, a, b) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, a, a) is GraphAliasResult.MUST_ALIAS
        assert graph_alias(graph, a, g) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, a, param) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, g, param) is GraphAliasResult.MAY_ALIAS

    def test_gep_offsets(self):
        graph = ValueGraph()
        base = graph.make("alloca", "arr")
        g1 = graph.make("gep", None, [base, graph.const(1)])
        g2 = graph.make("gep", None, [base, graph.const(2)])
        g1b = graph.make("gep", None, [base, graph.const(1)])
        unknown = graph.make("gep", None, [base, graph.make("param", 0)])
        assert graph_alias(graph, g1, g2) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, g1, g1b) is GraphAliasResult.MUST_ALIAS
        assert graph_alias(graph, g1, unknown) is GraphAliasResult.MAY_ALIAS


class TestRules:
    def _normalize(self, graph, roots, groups=None):
        normalizer = Normalizer(graph, rule_groups=groups or tuple(RULE_GROUPS))
        normalizer.normalize(roots)

    def test_boolean_classification_survives_deep_chains(self):
        # Boolean classification runs during *normalization*, which gets
        # no recursion-limit headroom (only graph construction does): a
        # gate formula deeper than the interpreter's default limit must
        # classify — and normalize — without a RecursionError.
        from repro.vgraph.rules import _is_boolean_node

        graph = ValueGraph()
        node = graph.make("icmp", "eq", [graph.make("param", 0), graph.const(0)])
        for index in range(sys.getrecursionlimit()):
            leaf = graph.make("icmp", "slt",
                              [graph.make("param", 0), graph.const(index)])
            node = graph.make("binop", "and", [node, leaf])
        assert _is_boolean_node(graph, node)
        compared = graph.make("icmp", "ne", [node, graph.false()])
        self._normalize(graph, [compared], ("boolean",))
        assert graph.same(compared, node)

    def test_constant_folding_rule(self):
        graph = ValueGraph()
        node = graph.make("binop", "add", [graph.const(3), graph.const(3)])
        self._normalize(graph, [node], ("constfold",))
        assert graph.same(node, graph.const(6))

    def test_shift_canonicalization(self):
        graph = ValueGraph()
        a = graph.make("param", 0)
        doubled = graph.make("binop", "add", [a, a])
        shifted = graph.make("binop", "shl", [a, graph.const(1)])
        self._normalize(graph, [doubled, shifted], ("constfold",))
        assert graph.same(doubled, shifted)

    def test_cmp_identical_rule(self):
        graph = ValueGraph()
        a = graph.make("param", 0)
        eq = graph.make("icmp", "eq", [a, a])
        ne = graph.make("icmp", "ne", [a, a])
        self._normalize(graph, [eq, ne], ("boolean",))
        assert graph.same(eq, graph.true())
        assert graph.same(ne, graph.false())

    def test_phi_rules(self):
        graph = ValueGraph()
        a, b = graph.make("param", 0), graph.make("param", 1)
        cond = graph.make("icmp", "slt", [a, b])
        # φ with a true branch collapses to it.
        phi_true = graph.phi([(graph.true(), a), (graph.false(), b)])
        # φ whose branches agree collapses.
        phi_same = graph.phi([(cond, a), (graph.not_(cond), a)])
        self._normalize(graph, [phi_true, phi_same], ("phi",))
        assert graph.same(phi_true, a)
        assert graph.same(phi_same, a)

    def test_load_over_store_rules(self):
        graph = ValueGraph()
        p, q = graph.make("alloca", "p"), graph.make("alloca", "q")
        value = graph.make("param", 0)
        mem0 = graph.make("mem0")
        store_p = graph.make("store", None, [value, p, mem0])
        store_q = graph.make("store", None, [graph.const(9), q, store_p])
        load_p = graph.make("load", None, [p, store_q])
        self._normalize(graph, [load_p], ("loadstore",))
        assert graph.same(load_p, value)

    def test_store_overwrite_rule(self):
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        mem0 = graph.make("mem0")
        first = graph.make("store", None, [graph.const(1), p, mem0])
        second = graph.make("store", None, [graph.const(2), p, first])
        direct = graph.make("store", None, [graph.const(2), p, mem0])
        self._normalize(graph, [second, direct], ("loadstore",))
        assert graph.same(second, direct)

    def test_eta_mu_rules(self):
        graph = ValueGraph()
        x = graph.make("param", 0)
        cond = graph.make("icmp", "slt", [x, graph.const(10)])
        invariant_mu = graph.make("mu", None, [x, x])
        eta = graph.make("eta", None, [cond, invariant_mu])
        never = graph.make("eta", None, [graph.false(), graph.make("mu", None, [x, graph.const(1)])])
        self._normalize(graph, [eta, never], ("eta",))
        assert graph.same(eta, x)
        assert graph.same(never, x)

    def test_eta_of_invariant_value(self):
        graph = ValueGraph()
        x = graph.make("param", 0)
        cond = graph.make("icmp", "slt", [x, graph.const(10)])
        eta = graph.make("eta", None, [cond, graph.make("binop", "add", [x, graph.const(1)])])
        self._normalize(graph, [eta], ("eta",))
        assert graph.same(eta, graph.make("binop", "add", [x, graph.const(1)]))

    def test_load_over_mu_rule(self):
        graph = ValueGraph()
        p, q = graph.make("alloca", "p"), graph.make("alloca", "q")
        mem0 = graph.make("mem0")
        mu = graph.make_mu()
        body_store = graph.make("store", None, [graph.const(1), q, mu])
        graph.set_args(mu, [mem0, body_store])
        load = graph.make("load", None, [p, mu])
        hoisted = graph.make("load", None, [p, mem0])
        self._normalize(graph, [load, hoisted], ("loadstore",))
        assert graph.same(load, hoisted)

    def test_load_over_mu_blocked_by_aliasing_store(self):
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        mem0 = graph.make("mem0")
        mu = graph.make_mu()
        body_store = graph.make("store", None, [graph.const(1), p, mu])
        graph.set_args(mu, [mem0, body_store])
        load = graph.make("load", None, [p, mu])
        hoisted = graph.make("load", None, [p, mem0])
        self._normalize(graph, [load, hoisted], ("loadstore",))
        assert not graph.same(load, hoisted)

    def test_rules_for_unknown_group(self):
        with pytest.raises(KeyError):
            rules_for(["nonsense"])


class TestCycleMatching:
    def _two_equal_cycles(self):
        graph = ValueGraph()
        zero, one = graph.const(0), graph.const(1)
        mu1 = graph.make_mu()
        graph.set_args(mu1, [zero, graph.make("binop", "add", [mu1, one])])
        mu2 = graph.make_mu()
        graph.set_args(mu2, [zero, graph.make("binop", "add", [mu2, one])])
        return graph, mu1, mu2

    def test_unify_equal_cycles(self):
        graph, mu1, mu2 = self._two_equal_cycles()
        assert unify(graph, mu1, mu2) is not None

    def test_unify_rejects_different_cycles(self):
        graph = ValueGraph()
        zero, one, two = graph.const(0), graph.const(1), graph.const(2)
        mu1 = graph.make_mu()
        graph.set_args(mu1, [zero, graph.make("binop", "add", [mu1, one])])
        mu2 = graph.make_mu()
        graph.set_args(mu2, [zero, graph.make("binop", "add", [mu2, two])])
        assert unify(graph, mu1, mu2) is None

    def test_merge_cycles(self):
        graph, mu1, mu2 = self._two_equal_cycles()
        merged = merge_cycles(graph, [mu1, mu2])
        assert merged > 0
        assert graph.same(mu1, mu2)

    def test_partition_refinement_merges_cycles(self):
        graph, mu1, mu2 = self._two_equal_cycles()
        merge_by_partition(graph, [mu1, mu2])
        assert graph.same(mu1, mu2)

    def test_partition_keeps_distinct_nodes_apart(self):
        graph = ValueGraph()
        a = graph.make("binop", "add", [graph.const(1), graph.const(2)])
        b = graph.make("binop", "add", [graph.const(1), graph.const(3)])
        mapping = refine_partition(graph)
        assert mapping[graph.resolve(a)] != mapping[graph.resolve(b)]


class TestGates:
    def test_edge_conditions(self, diamond_source):
        fn = parse_function(diamond_source)
        gates = GateAnalysis(fn)
        entry, then, else_ = fn.block("entry"), fn.block("then"), fn.block("else")
        cond_then = gates.edge_condition(entry, then)
        cond_else = gates.edge_condition(entry, else_)
        assert isinstance(cond_then, CondGate) and not cond_then.negated
        assert isinstance(cond_else, CondGate) and cond_else.negated

    def test_phi_gates_are_relative_to_idom(self, diamond_source):
        fn = parse_function(diamond_source)
        gates = GateAnalysis(fn)
        join_gates = dict((pred.name, gate) for pred, gate in gates.phi_gates(fn.block("join")))
        assert isinstance(join_gates["then"], CondGate)
        assert isinstance(join_gates["else"], CondGate)

    def test_loop_exit_condition(self, loop_source):
        from repro.analysis import LoopInfo

        fn = parse_function(loop_source)
        gates = GateAnalysis(fn)
        loop = LoopInfo.compute(fn).loops[0]
        exit_condition = gates.loop_exit_condition(loop)
        assert isinstance(exit_condition, CondGate) and exit_condition.negated

    def test_make_and_or_simplify(self):
        cond = CondGate(None, False)
        assert make_and([TRUE, cond]) is cond
        assert isinstance(make_and([FalseGate(), cond]), FalseGate)
        assert make_or([FalseGate(), cond]) is cond
        assert isinstance(make_or([TrueGate(), cond]), TrueGate)

    def test_memory_effects(self, memory_source, loop_source):
        memory_fn = parse_function(memory_source)
        loop_fn = parse_function(loop_source)
        assert MemoryEffects(memory_fn).any_writes()
        assert not MemoryEffects(loop_fn).any_writes()


class TestSharedGraphConstruction:
    def test_identical_straightline_functions_share_roots(self, diamond_source):
        fn = parse_function(diamond_source)
        clone = fn.clone()
        graph, s1, s2 = build_shared_graph(fn, clone)
        assert graph.same(s1.memory, s2.memory)
        assert s1.result is not None and graph.same(s1.result, s2.result)

    def test_identical_loop_functions_unify_after_cycle_merge(self, loop_source):
        fn = parse_function(loop_source)
        clone = fn.clone()
        graph, s1, s2 = build_shared_graph(fn, clone)
        # The two loops are separate μ-cycles until cycle matching runs.
        merge_cycles(graph, s1.roots() + s2.roots())
        graph.maximize_sharing()
        assert graph.same(s1.result, s2.result)
        assert graph.same(s1.memory, s2.memory)

    def test_loop_function_builds_mu_and_eta(self, loop_source):
        fn = parse_function(loop_source)
        graph, summary, _ = build_shared_graph(fn, fn.clone())
        kinds = {graph.node(n).kind for n in graph.reachable(summary.roots())}
        assert "mu" in kinds and "eta" in kinds

    def test_memory_function_builds_store_chain(self, memory_source):
        fn = parse_function(memory_source)
        graph, summary, _ = build_shared_graph(fn, fn.clone())
        memory_node = graph.node(summary.memory)
        assert memory_node.kind == "store"

    def test_irreducible_cfg_rejected(self):
        from repro.errors import IrreducibleCFGError
        from repro.vgraph import GraphBuilder, ValueGraph

        fn = parse_function(
            """
            define i32 @irr(i1 %c) {
            entry:
              br i1 %c, label %a, label %b
            a:
              br label %b
            b:
              br i1 %c, label %a, label %exit
            exit:
              ret i32 0
            }
            """
        )
        with pytest.raises(IrreducibleCFGError):
            GraphBuilder(ValueGraph(), fn)
