"""Tests for stepwise pipeline validation: snapshots, strategies, blame,
the shared analysis cache, process-pool sharding parity and the
global-cloning guarantees of the driver."""

import pickle
from dataclasses import replace

import pytest

from repro.analysis import AnalysisManager, function_fingerprint
from repro.bench import (
    executor_comparison,
    sharded_comparison,
    small_test_corpus,
    stepwise_comparison,
)
from repro.errors import IrreducibleCFGError
from repro.ir import Interpreter, clone_function, parse_function
from repro.transforms import PAPER_PIPELINE, PassManager, checkpoint_chain
from repro.validator import (
    DEFAULT_CONFIG,
    STRATEGIES,
    ValidationCache,
    llvm_md,
    validate,
    validate_function_pipeline,
    validate_module_batch,
)
from repro.validator.report import FunctionRecord, ValidationReport
from repro.validator.validate import ValidationResult

BUGGY_PIPELINE = ("adce", "bug-flip-operator", "gvn")


class TestPassSnapshots:
    def test_input_never_mutated(self, mini_corpus):
        for function in mini_corpus.defined_functions():
            before = function_fingerprint(function)
            PassManager(PAPER_PIPELINE).run_with_snapshots(function)
            assert function_fingerprint(function) == before

    def test_changed_flags_match_run_on_function(self, mini_corpus):
        manager = PassManager(PAPER_PIPELINE)
        for function in mini_corpus.defined_functions():
            snapshots = manager.run_with_snapshots(function)
            changed = manager.run_on_function(clone_function(function))
            assert {s.pass_name: s.changed for s in snapshots} == changed

    def test_unchanged_steps_share_checkpoint_identity(self, mini_corpus):
        manager = PassManager(PAPER_PIPELINE)
        for function in mini_corpus.defined_functions():
            snapshots = manager.run_with_snapshots(function)
            previous = function
            for snapshot in snapshots:
                if snapshot.changed:
                    assert snapshot.function is not previous
                else:
                    assert snapshot.function is previous
                previous = snapshot.function

    def test_final_snapshot_equals_plain_optimization(self, mini_corpus):
        manager = PassManager(PAPER_PIPELINE)
        for function in mini_corpus.defined_functions():
            snapshots = manager.run_with_snapshots(function)
            plain = clone_function(function)
            manager.run_on_function(plain)
            assert function_fingerprint(snapshots[-1].function) == function_fingerprint(plain)

    def test_repeated_pass_names_keep_distinct_bookkeeping(self, mini_corpus):
        # A pipeline may run the same pass twice; the second occurrence
        # must not overwrite the first's changed flag (which could make a
        # transformed function look untransformed and silently skip
        # validation).
        manager = PassManager(("gvn", "adce", "gvn"))
        assert manager.step_names == ["gvn", "adce", "gvn#2"]
        for function in mini_corpus.defined_functions():
            snapshots = manager.run_with_snapshots(function)
            assert [s.pass_name for s in snapshots] == ["gvn", "adce", "gvn#2"]
            flags = manager.run_on_function(clone_function(function))
            assert {s.pass_name: s.changed for s in snapshots} == flags
            _, record = validate_function_pipeline(
                function, ("gvn", "adce", "gvn"), strategy="stepwise")
            if record.transformed and record.validated:
                assert record.kept_prefix == record.changed_steps

    def test_declaration_snapshots_are_noops(self):
        from repro.ir import parse_module

        fn = parse_module("declare i32 @ext(i32)").functions["ext"]
        snapshots = PassManager(PAPER_PIPELINE).run_with_snapshots(fn)
        assert [s.changed for s in snapshots] == [False] * len(PAPER_PIPELINE)
        assert all(s.function is fn for s in snapshots)


class TestAnalysisManager:
    def test_same_version_analysed_once(self, loop_source):
        fn = parse_function(loop_source)
        manager = AnalysisManager()
        first = manager.analyses_for(fn)
        second = manager.analyses_for(fn)
        assert first is second
        assert manager.computed == 1 and manager.reused == 1
        assert manager.stats() == {
            "analyses_computed": 1, "analyses_reused": 1,
            "analyses_evicted": 0, "analyses_cached": 1,
        }

    def test_in_place_mutation_invalidates(self, loop_source):
        fn = parse_function(loop_source)
        manager = AnalysisManager()
        manager.analyses_for(fn)
        fn.block("body").instructions[0].opcode = "sub"
        manager.analyses_for(fn)
        assert manager.computed == 2 and manager.reused == 0

    def test_clones_are_distinct_versions(self, loop_source):
        fn = parse_function(loop_source)
        manager = AnalysisManager()
        bundle = manager.analyses_for(fn)
        clone_bundle = manager.analyses_for(clone_function(fn))
        # Same fingerprint, different object: the bundle must describe the
        # object it was computed for (analyses reference its blocks).
        assert bundle.fingerprint == clone_bundle.fingerprint
        assert bundle is not clone_bundle
        assert manager.computed == 2

    def test_irreducible_function_rejected(self):
        fn = parse_function(
            """
            define i32 @irr(i1 %c) {
            entry:
              br i1 %c, label %a, label %b
            a:
              br label %b
            b:
              br i1 %c, label %a, label %exit
            exit:
              ret i32 0
            }
            """
        )
        with pytest.raises(IrreducibleCFGError):
            AnalysisManager().analyses_for(fn)

    def test_validate_reuses_shared_analyses(self, loop_source):
        fn = parse_function(loop_source)
        copy = clone_function(fn)
        manager = AnalysisManager()
        assert validate(fn, copy, manager=manager).is_success
        assert validate(fn, copy, manager=manager).is_success
        # Second query reuses both bundles instead of recomputing them.
        assert manager.computed == 2 and manager.reused == 2


class TestStrategies:
    def test_unknown_strategy_rejected(self, mini_corpus):
        function = mini_corpus.defined_functions()[0]
        with pytest.raises(ValueError):
            validate_function_pipeline(function, PAPER_PIPELINE, strategy="bogus")

    def test_stepwise_accepts_superset_of_whole(self, mini_corpus):
        accepted = {}
        for strategy in STRATEGIES:
            names = set()
            for function in mini_corpus.defined_functions():
                _, record = validate_function_pipeline(
                    function, PAPER_PIPELINE, strategy=strategy)
                assert record.strategy == strategy
                if record.transformed and record.validated:
                    names.add(record.name)
            accepted[strategy] = names
        assert accepted["whole"] <= accepted["stepwise"]
        # Bisect's accepting fast path IS the whole query.
        assert accepted["bisect"] == accepted["whole"]

    def test_stepwise_fully_validated_record_shape(self, mini_corpus):
        seen_full = False
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise")
            if not (record.transformed and record.validated) or record.whole_fallback:
                continue
            seen_full = True
            assert record.result.reason == "stepwise-equal"
            assert record.kept_prefix == record.changed_steps
            assert record.blamed_pass is None
            assert len(record.pass_verdicts) == record.changed_steps
            assert all(v.is_success for v in record.pass_verdicts.values())
        assert seen_full

    def test_stepwise_interior_versions_analysed_once(self, mini_corpus):
        # The per-pair path's counter check: for a fully validated chain
        # of k changed steps there are k+1 versions and 2k builds, so
        # exactly k-1 lookups must be answered from the cache.  The
        # chain-shared path builds every version exactly once, so it
        # needs no analysis reuse at all.
        checked = False
        per_pair = replace(DEFAULT_CONFIG, chain_graphs=False)
        for function in mini_corpus.defined_functions():
            manager = AnalysisManager()
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, per_pair, strategy="stepwise",
                manager=manager)
            if not (record.transformed and record.validated) or record.whole_fallback:
                continue
            steps = record.changed_steps
            if steps < 2:
                continue
            checked = True
            assert manager.computed == steps + 1
            assert manager.reused == steps - 1
            assert record.analysis_stats == manager.stats()
            chain_manager = AnalysisManager()
            _, chain_record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise",
                manager=chain_manager)
            assert chain_record.signature() == record.signature()
            assert chain_manager.computed == steps + 1
            assert chain_manager.reused == 0
        assert checked

    def test_stepwise_blames_injected_bug(self, mini_corpus):
        rejected = 0
        for function in mini_corpus.defined_functions():
            kept, record = validate_function_pipeline(
                function, BUGGY_PIPELINE, strategy="stepwise")
            if not record.transformed_by.get("bug-flip-operator"):
                continue
            if record.validated:
                continue  # the flipped add was dead / unobservable
            rejected += 1
            assert record.blamed_pass == "bug-flip-operator"
            assert not record.pass_verdicts["bug-flip-operator"].is_success
            # The kept checkpoint is the end of the validated prefix, and
            # every verdict before the blamed pass succeeded.
            verdicts = list(record.pass_verdicts.values())
            assert all(v.is_success for v in verdicts[:-1])
        assert rejected > 0

    def test_bisect_blames_injected_bug(self, mini_corpus):
        rejected = 0
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, BUGGY_PIPELINE, strategy="bisect")
            if not record.transformed_by.get("bug-flip-operator"):
                continue
            if record.validated:
                continue
            rejected += 1
            assert record.blamed_pass == "bug-flip-operator"
            assert "bisected" in record.result.detail
        assert rejected > 0

    def test_every_buggy_pass_blamed_correctly(self, mini_corpus):
        """Both blame strategies attribute every injector's rejection to it."""
        from repro.transforms import ALL_BUGGY_PASSES

        attributed = 0
        for bug_pass in ALL_BUGGY_PASSES:
            pipeline = ("adce", "gvn", bug_pass, "dse")
            for function in mini_corpus.defined_functions():
                for strategy in ("stepwise", "bisect"):
                    _, record = validate_function_pipeline(
                        function, pipeline, strategy=strategy)
                    if not record.transformed_by.get(bug_pass) or record.validated:
                        continue  # injector idle, or the breakage is unobservable
                    attributed += 1
                    assert record.blamed_pass == bug_pass, (
                        bug_pass, strategy, function.name, record.blamed_pass)
        assert attributed > 0

    def test_partial_keep_is_semantically_sound(self, mini_corpus):
        """A partially kept body must still behave like the original."""
        result_module, report = llvm_md(
            mini_corpus, BUGGY_PIPELINE, label="buggy", strategy="stepwise")
        partial = [r for r in report.records if r.partially_kept]
        assert partial, "expected at least one partial keep under the buggy pipeline"
        for record in partial:
            original = mini_corpus.get_function(record.name)
            kept = result_module.get_function(record.name)
            for base in [(2, 4, 6, 8, 10), (-1, 3, 0, 5, 2), (0, 0, 0, 0, 0)]:
                args = list(base[: len(original.args)])
                before = Interpreter(mini_corpus).run(original, args).return_value
                after = Interpreter(result_module).run(kept, args).return_value
                assert before == after, record.name

    def test_stepwise_cache_answers_repeat_runs(self, mini_corpus):
        cache = ValidationCache()
        _, first = llvm_md(mini_corpus, PAPER_PIPELINE, cache=cache, strategy="stepwise")
        misses = cache.misses
        _, second = llvm_md(mini_corpus, PAPER_PIPELINE, cache=cache, strategy="stepwise")
        # Identical adjacent pairs: the second run validates nothing anew.
        assert cache.misses == misses
        assert second.cache_hits == sum(
            1 for r in second.records if r.transformed)

    def test_skip_unchanged_false_validates_identity(self):
        fn = parse_function("define i32 @id(i32 %a) {\nentry:\n  ret i32 %a\n}")
        kept, record = validate_function_pipeline(
            fn, PAPER_PIPELINE, skip_unchanged=False, strategy="stepwise")
        assert kept is fn
        assert record.result.is_success
        assert record.result.reason == "trivially-equal"

    def test_whole_records_kept_prefix(self, mini_corpus):
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="whole")
            if record.transformed and record.validated:
                assert record.kept_prefix == record.changed_steps
            else:
                assert record.kept_prefix == 0


class TestDriverModuleGuarantees:
    def test_result_module_shares_no_globals_or_functions(self, mini_corpus):
        for strategy in STRATEGIES:
            result_module, _ = llvm_md(mini_corpus, PAPER_PIPELINE, strategy=strategy)
            for name, global_var in result_module.globals.items():
                assert global_var is not mini_corpus.globals[name]
            originals = set(map(id, mini_corpus.globals.values()))
            originals.update(map(id, mini_corpus.functions.values()))
            for function in result_module.functions.values():
                for inst in function.instructions():
                    for operand in inst.operands:
                        assert id(operand) not in originals, (
                            f"@{function.name} still references an input-module "
                            f"global or function")

    def test_result_module_global_mutation_is_isolated(self, mini_corpus):
        result_module, _ = llvm_md(mini_corpus, PAPER_PIPELINE)
        name = next(iter(result_module.globals))
        original_init = mini_corpus.globals[name].initializer
        result_module.globals[name].initializer = None
        assert mini_corpus.globals[name].initializer is original_init


class TestNormalizeErrorReason:
    def test_normalization_failure_reported_as_normalize_error(self, loop_source, monkeypatch):
        import importlib

        from repro.errors import ValidationInternalError

        # ``repro.validator``'s re-exported ``validate`` function shadows
        # the submodule attribute, so resolve the module explicitly.
        validate_module = importlib.import_module("repro.validator.validate")

        class ExplodingNormalizer:
            def __init__(self, *args, **kwargs):
                pass

            def normalize_until_equal(self, goal_pairs):
                raise ValidationInternalError("injected normalization failure")

        monkeypatch.setattr(validate_module, "Normalizer", ExplodingNormalizer)
        fn = parse_function(loop_source)
        result = validate_module.validate(fn, clone_function(fn))
        assert not result.is_success
        assert result.reason == "normalize-error"
        assert "injected" in result.detail


class TestReportExtensions:
    def test_blame_histogram_and_prefix_aggregates(self):
        report = ValidationReport(label="x")
        ok = FunctionRecord("a", {"gvn": True},
                            ValidationResult("a", True, "stepwise-equal"),
                            strategy="stepwise", kept_prefix=1)
        partial = FunctionRecord("b", {"gvn": True, "dse": True},
                                 ValidationResult("b", False, "normalization-exhausted"),
                                 strategy="stepwise", blamed_pass="dse", kept_prefix=1)
        rolled_back = FunctionRecord("c", {"gvn": True},
                                     ValidationResult("c", False, "normalization-exhausted"),
                                     strategy="bisect", blamed_pass="gvn", kept_prefix=0)
        for record in (ok, partial, rolled_back):
            report.add(record)
        assert report.blame_histogram() == {"dse": 1, "gvn": 1}
        assert report.partially_kept_functions == 1
        assert report.kept_prefix_steps == 1
        assert partial.partially_kept and not ok.partially_kept
        assert not rolled_back.partially_kept


class TestShardedParity:
    """Sharding may change where a query runs, never what it decides."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_sharded_records_identical_to_serial(self, mini_corpus, strategy):
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy=strategy)
        sharded_config = replace(DEFAULT_CONFIG, concurrency=2)
        (_, sharded), = validate_module_batch(
            [mini_corpus], config=sharded_config, strategy=strategy)
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in sharded.records]
        assert sharded.shard_stats is not None
        assert sharded.shard_stats["distinct_pairs"] > 0

    def test_sharded_blame_matches_serial_on_buggy_pipeline(self, mini_corpus):
        _, serial = llvm_md(mini_corpus, BUGGY_PIPELINE, strategy="stepwise")
        sharded_config = replace(DEFAULT_CONFIG, concurrency=2)
        (_, sharded), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=sharded_config, strategy="stepwise")
        assert serial.blame_histogram() == sharded.blame_histogram()
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in sharded.records]
        # Rejections exercised round 2 (the whole-query fallbacks).
        assert serial.failures(), "the buggy pipeline should reject something"

    def test_llvm_md_delegates_to_sharded_batch(self, mini_corpus):
        config = replace(DEFAULT_CONFIG, concurrency=2)
        _, report = llvm_md(mini_corpus, PAPER_PIPELINE, config, strategy="stepwise")
        assert report.shard_stats is not None
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]

    def test_cross_module_pair_dedup(self):
        # Two content-identical modules: the sharded queue validates each
        # distinct pair once, the duplicate module is all cache hits.
        modules = [small_test_corpus(functions=4, seed=7),
                   small_test_corpus(functions=4, seed=7)]
        cache = ValidationCache()
        config = replace(DEFAULT_CONFIG, concurrency=2)
        results = validate_module_batch(
            modules, config=config, cache=cache, strategy="stepwise")
        duplicate_report = results[1][1]
        assert duplicate_report.cache_hits == sum(
            1 for r in duplicate_report.records if r.transformed)
        assert all(r.from_cache for r in duplicate_report.records if r.transformed)
        # Distinct consumed queries were counted exactly once overall.
        assert cache.misses <= len(cache)

    def test_batch_stepwise_partial_keep_is_semantically_sound(self, mini_corpus):
        config = replace(DEFAULT_CONFIG, concurrency=2)
        (result_module, report), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config, strategy="stepwise")
        partial = [r for r in report.records if r.partially_kept]
        assert partial, "expected a partial keep under the buggy pipeline"
        for record in partial:
            original = mini_corpus.get_function(record.name)
            kept = result_module.get_function(record.name)
            for base in [(2, 4, 6, 8, 10), (-1, 3, 0, 5, 2), (0, 0, 0, 0, 0)]:
                args = list(base[: len(original.args)])
                before = Interpreter(mini_corpus).run(original, args).return_value
                after = Interpreter(result_module).run(kept, args).return_value
                assert before == after, record.name

    def test_sharded_comparison_experiment(self):
        rows = sharded_comparison(scale=0.2, benchmarks=["sqlite", "mcf"],
                                  concurrency=2)
        assert [row["benchmark"] for row in rows] == ["sqlite", "mcf"]
        for row in rows:
            assert row["identical"], row["mismatches"]
            assert row["distinct_pairs"] > 0


class TestPoolPayloadPickleSafety:
    """Everything shipped to the process pool must survive pickling."""

    def test_checkpoints_and_configs_pickle(self, mini_corpus):
        function = mini_corpus.defined_functions()[0]
        snapshots = PassManager(PAPER_PIPELINE).run_with_snapshots(function)
        steps, versions = checkpoint_chain(function, snapshots)
        for before, after in zip(versions, versions[1:]):
            payload = (before, after, replace(DEFAULT_CONFIG, concurrency=2))
            restored_before, restored_after, restored_config = pickle.loads(
                pickle.dumps(payload))
            assert function_fingerprint(restored_before) == function_fingerprint(before)
            assert function_fingerprint(restored_after) == function_fingerprint(after)
            assert restored_config == replace(DEFAULT_CONFIG, concurrency=2)
        for snapshot in snapshots:
            restored = pickle.loads(pickle.dumps(snapshot))
            assert restored.pass_name == snapshot.pass_name
            assert restored.changed == snapshot.changed

    def test_snapshot_fingerprint_cached_and_stable(self, mini_corpus):
        function = mini_corpus.defined_functions()[0]
        snapshots = PassManager(PAPER_PIPELINE).run_with_snapshots(function)
        for snapshot in snapshots:
            assert snapshot.fingerprint() == function_fingerprint(snapshot.function)
            assert snapshot.fingerprint() is snapshot.fingerprint()  # cached

    def test_pool_failure_falls_back_to_serial(self, mini_corpus, monkeypatch):
        # Break process spawning entirely: the batch driver must degrade
        # to serial in-process validation with identical results.
        import concurrent.futures

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", ExplodingPool)
        config = replace(DEFAULT_CONFIG, concurrency=2)
        (_, report), = validate_module_batch(
            [mini_corpus], config=config, strategy="stepwise")
        assert report.shard_stats["workers"] == 0  # pool never engaged
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]


class TestExecutorBackends:
    """``config.executor`` picks a scheduling backend; backends may change
    where and in what order queries run, never what they decide."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("executor,concurrency", [
        ("serial", 0), ("pool", 2), ("wave", 0), ("wave", 2),
        ("steal", 0), ("steal", 2),
    ])
    def test_backend_records_identical(self, mini_corpus, strategy, executor,
                                       concurrency):
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy=strategy)
        config = replace(DEFAULT_CONFIG, executor=executor, concurrency=concurrency)
        (_, report), = validate_module_batch(
            [mini_corpus], config=config, strategy=strategy)
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["executor"] == executor

    def test_wave_cancels_doomed_pairs_on_high_rejection(self, mini_corpus):
        # The point of the wave backend: with a rejecting pipeline, the
        # pairs after a function's first rejection are never validated —
        # the eager schedule pays for all of them.
        _, serial = llvm_md(mini_corpus, BUGGY_PIPELINE, strategy="stepwise")
        eager_config = replace(DEFAULT_CONFIG, executor="serial",
                               chain_graphs=False)
        (_, eager), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=eager_config, strategy="stepwise")
        wave_config = replace(DEFAULT_CONFIG, executor="wave")
        (_, wave), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=wave_config, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in wave.records] == \
               [r.signature() for r in eager.records]
        assert wave.shard_stats["waves"] > 0
        assert wave.shard_stats["waves_cancelled"] > 0
        assert wave.shard_stats["speculative_pairs_skipped"] > 0
        # Fewer distinct queries answered than the eager per-pair schedule.
        assert wave.shard_stats["distinct_pairs"] < eager.shard_stats["distinct_pairs"]

    def test_wave_on_accepting_pipeline_cancels_nothing(self, mini_corpus):
        config = replace(DEFAULT_CONFIG, executor="wave")
        (_, report), = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config, strategy="stepwise")
        rejected = [r for r in report.records if r.transformed and not r.validated]
        if not rejected:
            assert report.shard_stats["waves_cancelled"] == 0
            assert report.shard_stats["speculative_pairs_skipped"] == 0
        # Waves ran as deep as the longest accepting chain.
        longest = max((r.changed_steps for r in report.records if r.transformed),
                      default=0)
        assert report.shard_stats["waves"] >= min(longest, 1)

    def test_llvm_md_delegates_on_wave_executor(self, mini_corpus):
        config = replace(DEFAULT_CONFIG, executor="wave")
        _, report = llvm_md(mini_corpus, PAPER_PIPELINE, config, strategy="stepwise")
        assert report.shard_stats is not None
        assert report.shard_stats["executor"] == "wave"
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]

    def test_invalid_executor_combinations_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="pool"):
            replace(DEFAULT_CONFIG, executor="pool", concurrency=1)
        with pytest.raises(ValueError, match="pool"):
            replace(DEFAULT_CONFIG, executor="pool")
        with pytest.raises(ValueError, match="serial"):
            replace(DEFAULT_CONFIG, executor="serial", concurrency=4)
        with pytest.raises(ValueError, match="unknown executor"):
            replace(DEFAULT_CONFIG, executor="bogus")
        # Valid combinations construct fine.
        replace(DEFAULT_CONFIG, executor="wave")
        replace(DEFAULT_CONFIG, executor="wave", concurrency=4)
        replace(DEFAULT_CONFIG, executor="pool", concurrency=2)
        replace(DEFAULT_CONFIG, executor="serial", concurrency=1)

    def test_executor_comparison_experiment(self):
        rows = executor_comparison(scale=0.2, benchmarks=["sqlite", "mcf"],
                                   concurrency=2)
        assert [row["benchmark"] for row in rows] == ["sqlite", "mcf"]
        for row in rows:
            assert row["identical"], row["mismatches"]
            assert row["serial_pairs"] > 0
            assert row["wave_pairs"] <= row["serial_pairs"]
            assert row["wave_pairs_saved"] == row["serial_pairs"] - row["wave_pairs"]
            assert row["steal_pairs"] > 0
            assert row["steal_attempts"] >= row["items_stolen"]


class TestStealExecutor:
    """The work-stealing backend: single-worker parity, the mixed
    chain+pair queue, streaming cancellation and counter plumbing."""

    def test_single_worker_matches_serial(self, mini_corpus):
        # concurrency 0 spawns no processes: the scheduling loop runs
        # in-process in priority order — the deterministic parity
        # baseline for the stealing discipline.
        _, serial = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=0)
        (_, report), = validate_module_batch(
            [mini_corpus], config=config, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["executor"] == "steal"
        assert report.shard_stats["workers"] == 0
        assert report.shard_stats["items_stolen"] == 0

    def test_mixed_chain_and_pair_queue(self):
        # Both kinds of work item side by side on the shared queue: a
        # partially warmed cache leaves some functions one missing pair
        # (shipped as plain pair items — the chain no longer amortizes)
        # while untouched functions still pack whole chain items.
        from repro.validator import build_plan

        module = small_test_corpus(functions=6, seed=11)
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=2)
        cache = ValidationCache()
        probe = build_plan([module], config=config, strategy="stepwise")
        for index, function_plan in enumerate(probe.function_plans()):
            if index % 2 or len(function_plan.pair_keys) < 2:
                continue
            pairs = list(zip(function_plan.versions, function_plan.versions[1:]))
            for key, (before, after) in list(zip(function_plan.pair_keys,
                                                 pairs))[1:]:
                cache.put(key, validate(before, after, config))
        plan = build_plan([module], config=config, cache=cache,
                          strategy="stepwise")
        assert plan.pending, "expected straggler pair items"
        assert plan.pending_chains, "expected packed chain items"
        _, serial = llvm_md(module, PAPER_PIPELINE, strategy="stepwise")
        (_, report), = validate_module_batch(
            [module], config=config, cache=cache, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["chain_items"] > 0
        # More items ran through the pool than the chains alone: the
        # straggler pairs shared the queue.
        assert report.shard_stats["pooled_pairs"] > \
            report.shard_stats["chain_items"]

    def test_steal_cancellation_on_buggy_pipeline(self, mini_corpus):
        # With chain packing off, every adjacent pair rides the queue
        # individually and the stream of rejections cancels the doomed
        # later pairs — deterministically so with concurrency 0.
        _, serial = llvm_md(mini_corpus, BUGGY_PIPELINE, strategy="stepwise")
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=0,
                         chain_graphs=False)
        (_, report), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config, strategy="stepwise")
        assert [r.signature() for r in serial.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["speculative_pairs_skipped"] > 0

    def test_worker_death_mid_steal_degrades_losslessly(self, mini_corpus,
                                                        monkeypatch):
        # The pool dies after streaming two verdicts back: those verdicts
        # are kept, the unfinished remainder reruns serially, and the
        # consumed-query ledger matches a clean serial run exactly.
        from repro.validator.scheduler import steal
        from repro.validator.scheduler.executors import _validate_item

        class FlakyStealPool:
            def __init__(self, workers):
                self.pending = {}
                self.completed = 0

            def send(self, worker_id, tag, item):
                pickle.dumps((tag, item))  # the real pool's payload contract
                self.pending[worker_id] = (tag, item)

            def receive(self, outstanding):
                if self.completed >= 2:
                    raise steal.BrokenStealPool("worker died mid-steal")
                worker_id, (tag, item) = next(iter(self.pending.items()))
                del self.pending[worker_id]
                self.completed += 1
                return worker_id, tag, True, _validate_item(item)

            def close(self):
                self.pending.clear()

        monkeypatch.setattr(steal, "StealPool", FlakyStealPool)
        clean_cache = ValidationCache()
        (_, clean), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE,
            config=replace(DEFAULT_CONFIG, executor="serial"),
            cache=clean_cache, strategy="stepwise")
        flaky_cache = ValidationCache()
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=2)
        (_, report), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config,
            cache=flaky_cache, strategy="stepwise")
        assert [r.signature() for r in clean.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["pool_degraded"] >= 1
        # The two streamed verdicts were kept (not re-run serially) and
        # no cache query was lost or double-counted.
        assert flaky_cache.hits == clean_cache.hits
        assert flaky_cache.misses == clean_cache.misses
        assert flaky_cache.misses <= len(flaky_cache)

    def test_steal_counters_reach_shard_stats(self):
        # Enough items across few-enough workers that at least the
        # steal path's bookkeeping is exercised and reported.
        module = small_test_corpus(functions=14, seed=11)
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=2)
        (_, report), = validate_module_batch(
            [module], config=config, strategy="stepwise")
        stats = report.shard_stats
        assert stats["executor"] == "steal"
        assert stats["items_stolen"] >= 0
        assert stats["steal_attempts"] >= stats["items_stolen"]
        assert "store_flushes" in stats and "store_lazy_loads" in stats


class TestFaultInjection:
    """Workers that die or raise mid-batch degrade to serial losslessly:
    records stay identical and no cache query is lost or double-counted."""

    @staticmethod
    def _flaky_pool_class(error: BaseException, yield_before_failure: int = 1):
        """A fake ProcessPoolExecutor whose map dies after a few results."""

        class FlakyPool:
            def __init__(self, *args, **kwargs):
                pass

            def map(self, fn, items, chunksize=1):
                items = list(items)

                def generate():
                    for index, item in enumerate(items):
                        if index >= yield_before_failure:
                            raise error
                        yield fn(item)

                return generate()

            def shutdown(self, *args, **kwargs):
                pass

        return FlakyPool

    @pytest.mark.parametrize("executor", ["pool", "wave"])
    def test_worker_death_mid_batch_degrades_losslessly(self, mini_corpus,
                                                        monkeypatch, executor):
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor",
            self._flaky_pool_class(BrokenProcessPool("worker died mid-wave")))
        clean_cache = ValidationCache()
        (_, clean), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE,
            config=replace(DEFAULT_CONFIG, executor="serial"),
            cache=clean_cache, strategy="stepwise")
        flaky_cache = ValidationCache()
        config = replace(DEFAULT_CONFIG, executor=executor, concurrency=2)
        (_, report), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config,
            cache=flaky_cache, strategy="stepwise")
        assert [r.signature() for r in clean.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["pool_degraded"] >= 1
        assert report.shard_stats["workers"] == 0  # nothing ran pooled
        # No lost or double-counted cache queries: the degraded run's
        # consumed-query ledger is identical to the clean serial run's.
        # (``entries`` may differ — the wave backend legitimately stores
        # fewer verdicts than the eager schedule.)
        assert flaky_cache.hits == clean_cache.hits
        assert flaky_cache.misses == clean_cache.misses
        assert flaky_cache.misses <= len(flaky_cache)

    def test_worker_exception_mid_batch_degrades_losslessly(self, mini_corpus,
                                                            monkeypatch):
        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor",
            self._flaky_pool_class(RuntimeError("worker raised mid-batch")))
        clean_cache = ValidationCache()
        (_, clean), = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE,
            config=replace(DEFAULT_CONFIG, executor="serial"),
            cache=clean_cache, strategy="stepwise")
        flaky_cache = ValidationCache()
        config = replace(DEFAULT_CONFIG, executor="pool", concurrency=2)
        (_, report), = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config,
            cache=flaky_cache, strategy="stepwise")
        assert [r.signature() for r in clean.records] == \
               [r.signature() for r in report.records]
        assert report.shard_stats["pool_degraded"] >= 1
        assert flaky_cache.stats() == clean_cache.stats()

    def test_degraded_run_consumes_every_query_once(self, mini_corpus,
                                                    monkeypatch):
        # Each transformed function's consumed queries are counted exactly
        # once as hit or miss even after a mid-batch degradation: misses
        # equal the distinct entries actually stored, and every consumed
        # key was counted.
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor",
            self._flaky_pool_class(BrokenProcessPool("boom"), 2))
        cache = ValidationCache()
        config = replace(DEFAULT_CONFIG, executor="wave", concurrency=2)
        (_, report), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config,
            cache=cache, strategy="stepwise")
        assert cache.misses <= len(cache)
        assert cache.misses > 0
        # A second identical sweep answers everything from the cache.
        (_, second), = validate_module_batch(
            [mini_corpus], BUGGY_PIPELINE, config=config,
            cache=cache, strategy="stepwise")
        assert [r.signature() for r in report.records] == \
               [r.signature() for r in second.records]
        assert all(r.from_cache for r in second.records if r.transformed)


class TestAnalysisEviction:
    """The LRU bound changes memory behavior, never verdicts."""

    def test_eviction_preserves_stepwise_records(self, mini_corpus):
        unbounded_records = []
        bounded_records = []
        for function in mini_corpus.defined_functions():
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise",
                manager=AnalysisManager())
            unbounded_records.append(record)
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise",
                manager=AnalysisManager(max_entries=2))
            bounded_records.append(record)
        assert [r.signature() for r in unbounded_records] == \
               [r.signature() for r in bounded_records]

    def test_bound_enforced_and_counted(self, mini_corpus):
        manager = AnalysisManager(max_entries=2)
        for function in mini_corpus.defined_functions():
            validate_function_pipeline(function, PAPER_PIPELINE,
                                       strategy="stepwise", manager=manager)
        assert len(manager) <= 2
        assert manager.evicted > 0
        assert manager.stats()["analyses_evicted"] == manager.evicted

    def test_lru_order_preserves_stepwise_reuse(self, mini_corpus):
        # Stepwise consumes versions in pipeline order, so even the
        # minimal useful bound keeps every interior-checkpoint reuse.
        for function in mini_corpus.defined_functions():
            unbounded = AnalysisManager()
            _, record = validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise", manager=unbounded)
            if not (record.transformed and record.validated) or record.whole_fallback:
                continue
            bounded = AnalysisManager(max_entries=2)
            validate_function_pipeline(
                function, PAPER_PIPELINE, strategy="stepwise", manager=bounded)
            assert bounded.reused == unbounded.reused

    def test_config_bound_reaches_driver_managers(self, mini_corpus):
        config = replace(DEFAULT_CONFIG, analysis_cache_size=2)
        _, report = llvm_md(mini_corpus, PAPER_PIPELINE, config, strategy="stepwise")
        assert report.analysis_stats["analyses_cached"] <= 2
        _, unbounded_report = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        assert [r.signature() for r in unbounded_report.records] == \
               [r.signature() for r in report.records]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AnalysisManager(max_entries=0)
        with pytest.raises(ValueError):
            replace(DEFAULT_CONFIG, analysis_cache_size=-1)


class TestStepwiseComparisonExperiment:
    def test_rows_and_superset_on_subset(self):
        rows = stepwise_comparison(scale=0.2, benchmarks=["sqlite", "mcf"])
        assert [row["benchmark"] for row in rows] == ["sqlite", "mcf"]
        for row in rows:
            assert row["superset_ok"], row["superset_violations"]
            assert row["stepwise_validated"] >= row["whole_validated"]
            if row["multi_step_functions"]:
                # The shared AnalysisManager must remove recomputation.
                assert row["analyses_reused"] > 0
