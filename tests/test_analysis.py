"""Tests for the analysis package: CFG, dominators, loops, aliasing, use-def."""

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    DominatorTree,
    LoopInfo,
    PostDominatorTree,
    UseDefInfo,
    is_reducible,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
    users_of,
)
from repro.ir import (
    Alloca,
    Argument,
    GetElementPtr,
    GlobalVariable,
    I32,
    const_int,
    parse_function,
    parse_module,
    verify_function,
)

IRREDUCIBLE = """
define i32 @irr(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  br i1 %c, label %a, label %exit
exit:
  ret i32 0
}
"""

NESTED_LOOPS = """
define i32 @nested(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %inext, %outer_latch ]
  %ci = icmp slt i32 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i32 [ 0, %outer ], [ %jnext, %inner ]
  %cj = icmp slt i32 %j, 3
  %jnext = add i32 %j, 1
  br i1 %cj, label %inner, label %outer_latch
outer_latch:
  %inext = add i32 %i, 1
  br label %outer
exit:
  ret i32 %i
}
"""


class TestCFG:
    def test_reachable_and_rpo(self, diamond_source):
        fn = parse_function(diamond_source)
        blocks = reachable_blocks(fn)
        assert [b.name for b in blocks][0] == "entry"
        assert len(blocks) == 4
        rpo = reverse_postorder(fn)
        names = [b.name for b in rpo]
        assert names[0] == "entry"
        assert names.index("join") > names.index("then")
        assert names.index("join") > names.index("else")

    def test_predecessor_map(self, diamond_source):
        fn = parse_function(diamond_source)
        preds = predecessor_map(fn)
        join = fn.block("join")
        assert {b.name for b in preds[join]} == {"then", "else"}

    def test_remove_unreachable(self, diamond_source):
        fn = parse_function(diamond_source)
        dead = fn.add_block("dead")
        from repro.ir import Branch

        dead.append(Branch(fn.block("join")))
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        verify_function(fn)

    def test_reducibility(self, loop_source):
        assert is_reducible(parse_function(loop_source))
        assert is_reducible(parse_function(NESTED_LOOPS))
        assert not is_reducible(parse_function(IRREDUCIBLE))

    def test_split_critical_edges(self):
        fn = parse_function(
            """
            define i32 @f(i1 %c) {
            entry:
              br i1 %c, label %join, label %other
            other:
              br label %join
            join:
              %r = phi i32 [ 1, %entry ], [ 2, %other ]
              ret i32 %r
            }
            """
        )
        split = split_critical_edges(fn)
        assert split == 1
        verify_function(fn)


class TestDominators:
    def test_idom_chain(self, diamond_source):
        fn = parse_function(diamond_source)
        dom = DominatorTree.compute(fn)
        entry, then, else_, join = (fn.block(n) for n in ("entry", "then", "else", "join"))
        assert dom.idom(entry) is None
        assert dom.idom(then) is entry
        assert dom.idom(join) is entry
        assert dom.dominates(entry, join)
        assert not dom.dominates(then, join)
        assert dom.strictly_dominates(entry, then)
        assert not dom.strictly_dominates(entry, entry)

    def test_dominance_frontier(self, diamond_source):
        fn = parse_function(diamond_source)
        dom = DominatorTree.compute(fn)
        frontier = dom.dominance_frontier()
        assert fn.block("join") in frontier[fn.block("then")]
        assert fn.block("join") in frontier[fn.block("else")]
        assert not frontier[fn.block("entry")]

    def test_loop_dominators(self, loop_source):
        fn = parse_function(loop_source)
        dom = DominatorTree.compute(fn)
        assert dom.dominates(fn.block("loop"), fn.block("body"))
        assert dom.dominates(fn.block("loop"), fn.block("exit"))
        assert not dom.dominates(fn.block("body"), fn.block("exit"))

    def test_post_dominators(self, diamond_source):
        fn = parse_function(diamond_source)
        pdom = PostDominatorTree.compute(fn)
        assert pdom.postdominates(fn.block("join"), fn.block("entry"))
        assert pdom.postdominates(fn.block("join"), fn.block("then"))
        assert not pdom.postdominates(fn.block("then"), fn.block("entry"))

    def test_preorder_walk_covers_all_blocks(self, loop_source):
        fn = parse_function(loop_source)
        dom = DominatorTree.compute(fn)
        assert len(dom.dominator_tree_preorder()) == len(reachable_blocks(fn))


class TestLoops:
    def test_simple_loop(self, loop_source):
        fn = parse_function(loop_source)
        info = LoopInfo.compute(fn)
        assert len(info) == 1
        loop = info.loops[0]
        assert loop.header.name == "loop"
        assert {b.name for b in loop.blocks} == {"loop", "body"}
        assert loop.preheader().name == "entry"
        assert [b.name for b in loop.exit_blocks()] == ["exit"]
        assert info.loop_depth(fn.block("body")) == 1
        assert info.loop_depth(fn.block("exit")) == 0

    def test_nested_loops(self):
        fn = parse_function(NESTED_LOOPS)
        info = LoopInfo.compute(fn)
        assert len(info) == 2
        outer = info.loop_for(fn.block("outer_latch"))
        inner = info.loop_for(fn.block("inner"))
        assert inner.parent is outer
        assert outer.depth == 1 and inner.depth == 2
        assert inner in outer.children
        assert info.loop_depth(fn.block("inner")) == 2

    def test_no_loops(self, diamond_source):
        fn = parse_function(diamond_source)
        assert len(LoopInfo.compute(fn)) == 0


class TestAliasAnalysis:
    def test_distinct_allocas(self):
        aa = AliasAnalysis()
        a, b = Alloca(I32), Alloca(I32)
        assert aa.alias(a, b) is AliasResult.NO_ALIAS
        assert aa.alias(a, a) is AliasResult.MUST_ALIAS

    def test_alloca_vs_argument_and_global(self):
        aa = AliasAnalysis()
        slot = Alloca(I32)
        from repro.ir import ptr

        arg = Argument(ptr(I32), "p")
        g = GlobalVariable("g", I32)
        assert aa.no_alias(slot, arg)
        assert aa.no_alias(slot, g)
        assert aa.alias(g, GlobalVariable("h", I32)) is AliasResult.NO_ALIAS

    def test_gep_constant_offsets(self):
        aa = AliasAnalysis()
        base = Alloca(I32, const_int(8))
        g1 = GetElementPtr(I32, base, [const_int(1)])
        g2 = GetElementPtr(I32, base, [const_int(2)])
        g1b = GetElementPtr(I32, base, [const_int(1)])
        assert aa.no_alias(g1, g2)
        assert aa.alias(g1, g1b) is AliasResult.MUST_ALIAS

    def test_gep_unknown_offsets_may_alias(self):
        aa = AliasAnalysis()
        base = Alloca(I32, const_int(8))
        idx = Argument(I32, "i")
        g1 = GetElementPtr(I32, base, [idx])
        g2 = GetElementPtr(I32, base, [const_int(2)])
        assert aa.alias(g1, g2) is AliasResult.MAY_ALIAS

    def test_arguments_may_alias_each_other(self):
        from repro.ir import ptr

        aa = AliasAnalysis()
        p = Argument(ptr(I32), "p")
        q = Argument(ptr(I32), "q")
        assert aa.alias(p, q) is AliasResult.MAY_ALIAS


class TestUseDef:
    def test_users_of(self, diamond_source):
        fn = parse_function(diamond_source)
        x = fn.block("then").instructions[0]
        phi = fn.block("join").phis()[0]
        assert phi in users_of(fn, x)

    def test_usedef_snapshot(self, loop_source):
        fn = parse_function(loop_source)
        info = UseDefInfo(fn)
        acc_phi = [p for p in fn.block("loop").phis() if p.name == "acc"][0]
        users = info.users(acc_phi)
        assert any(u.opcode == "add" for u in users)
        assert any(u.opcode == "ret" for u in users)
        dead = fn.block("body").instructions[0]  # %t has a user, so not dead
        assert not info.is_dead(dead)
