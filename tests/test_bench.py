"""Tests for the benchmark substrate: generator, corpora, experiments, tables."""

from repro.bench import (
    BENCHMARKS_BY_NAME,
    PAPER_BENCHMARKS,
    build_corpus,
    figure4,
    figure6,
    figure7,
    figure8,
    format_bar_chart,
    format_grouped_bars,
    format_table,
    generate_module,
    table1,
)
from repro.bench.generator import GeneratorConfig, ModuleShape, ProgramGenerator
from repro.ir import Interpreter, print_module, verify_module
from repro.transforms import PAPER_PIPELINE


class TestGenerator:
    def test_deterministic(self):
        first = print_module(generate_module(functions=3, seed=42))
        second = print_module(generate_module(functions=3, seed=42))
        assert first == second

    def test_different_seeds_differ(self):
        first = print_module(generate_module(functions=3, seed=1))
        second = print_module(generate_module(functions=3, seed=2))
        assert first != second

    def test_generated_modules_verify(self):
        for seed in range(4):
            module = generate_module(functions=3, seed=seed)
            verify_module(module)

    def test_generated_functions_terminate_under_interpretation(self):
        module = generate_module(functions=4, seed=5)
        for fn in module.defined_functions():
            args = [3] * len(fn.args)
            result = Interpreter(module).run(fn, args)
            assert isinstance(result.return_value, int)

    def test_declares_external_functions(self):
        module = generate_module(functions=1, seed=0)
        assert "readnone" in module.get_function("ext_pure").attributes
        assert "readonly" in module.get_function("ext_length").attributes
        assert not module.get_function("ext_effect").attributes

    def test_config_controls_loops(self):
        no_loops = GeneratorConfig(loop_probability=0.0, statements=(6, 6))
        shape = ModuleShape(functions=2, seed=3, function_config=no_loops)
        module = ProgramGenerator(shape).generate_module()
        from repro.analysis import LoopInfo

        for fn in module.defined_functions():
            assert len(LoopInfo.compute(fn)) == 0


class TestCorpora:
    def test_twelve_paper_benchmarks(self):
        names = {spec.name for spec in PAPER_BENCHMARKS}
        assert names == {
            "sqlite", "bzip2", "gcc", "h264ref", "hmmer", "lbm",
            "libquantum", "mcf", "milc", "perlbench", "sjeng", "sphinx",
        }
        assert all(spec.paper_functions > 0 for spec in PAPER_BENCHMARKS)

    def test_scaling(self):
        spec = BENCHMARKS_BY_NAME["lbm"]
        small = build_corpus(spec, scale=0.5)
        assert 1 <= len(small.defined_functions()) <= spec.functions

    def test_corpus_is_in_ssa_form(self):
        module = build_corpus(BENCHMARKS_BY_NAME["lbm"], scale=0.5)
        verify_module(module)
        # mem2reg ran: scalar locals are gone, φ-nodes exist somewhere.
        has_phi = any(
            inst.opcode == "phi" for fn in module.defined_functions() for inst in fn.instructions()
        )
        assert has_phi

    def test_corpus_without_mem2reg(self):
        module = build_corpus(BENCHMARKS_BY_NAME["lbm"], scale=0.5, run_mem2reg=False)
        verify_module(module)
        allocas = sum(
            1 for fn in module.defined_functions() for i in fn.instructions() if i.opcode == "alloca"
        )
        assert allocas > 0

    def test_relative_sizes_follow_paper(self):
        rows = {row["benchmark"]: row for row in table1(scale=0.4, benchmarks=["gcc", "lbm", "mcf"])}
        assert rows["gcc"]["functions"] > rows["lbm"]["functions"]
        assert rows["gcc"]["loc"] > rows["mcf"]["loc"]


class TestExperiments:
    def test_table1_columns(self):
        rows = table1(scale=0.25, benchmarks=["lbm", "mcf"])
        assert {"benchmark", "size_bytes", "loc", "functions", "paper_functions"} <= set(rows[0])

    def test_figure4_has_overall_row(self):
        rows = figure4(scale=0.25, benchmarks=["lbm", "bzip2"])
        assert rows[-1]["benchmark"] == "overall"
        for row in rows:
            assert 0.0 <= row["rate"] <= 100.0
            assert row["validated"] <= row["transformed"] <= row["functions"]

    def test_figure6_rates_increase_with_rules(self):
        results = figure6(scale=0.25, benchmarks=["bzip2"])
        labels = list(results)
        first, last = labels[0], labels[-1]
        assert results[last]["bzip2"] >= results[first]["bzip2"]

    def test_figure7_shape(self):
        results = figure7(scale=0.25, benchmarks=["lbm"])
        assert set(results) == {"no rules", "all rules"}
        assert results["all rules"]["lbm"] >= results["no rules"]["lbm"]

    def test_figure8_constfold_helps(self):
        results = figure8(scale=0.25, benchmarks=["bzip2"])
        assert results["all rules"]["bzip2"] >= results["no rules"]["bzip2"]


class TestTables:
    def test_format_table(self):
        text = format_table([{"a": 1, "bee": "xy"}, {"a": 22, "bee": "z"}], title="T")
        assert "T" in text and "bee" in text and "22" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_bar_chart(self):
        text = format_bar_chart({"sqlite": 90.0, "gcc": 55.5}, title="rates")
        assert "sqlite" in text and "#" in text and "55.5" in text

    def test_format_grouped_bars(self):
        text = format_grouped_bars({"no rules": {"a": 10.0}, "all": {"a": 90.0}})
        assert "[no rules]" in text and "[all]" in text


class TestChainComparisonExperiment:
    def test_chain_comparison_parity_and_savings(self):
        from repro.bench import chain_comparison

        rows = chain_comparison(scale=0.25, benchmarks=["mcf", "hmmer"])
        assert [row["benchmark"] for row in rows] == ["mcf", "hmmer"]
        for row in rows:
            assert row["identical"], row["mismatches"]
            if row["chains"]:
                # The whole point: chain construction beats per-pair.
                assert row["chain_nodes_built"] < row["per_pair_nodes_built"]
                assert row["chain_normalize_runs"] < row["per_pair_normalize_runs"]


class TestPerfGuardAndTriageCLIs:
    @staticmethod
    def _guard_runner(artifact_path, baseline_path):
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parent.parent

        def run(*extra):
            return subprocess.run(
                [sys.executable, str(root / "benchmarks" / "perf_guard.py"),
                 "--artifact", str(artifact_path), "--baseline", str(baseline_path),
                 *extra],
                capture_output=True, text=True,
                env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"})

        return run

    def test_perf_guard_flatten_and_gate_single_scale(self, tmp_path):
        import json

        artifact = {
            "schema": 1, "scale": 0.2,
            "totals": {"chain": {"nodes_built": 100, "nodes_created": 120,
                                 "rule_invocations": 500, "normalize_runs": 5},
                       "per_pair": {"nodes_built": 200, "nodes_created": 240,
                                    "rule_invocations": 900, "normalize_runs": 11}},
        }
        artifact_path = tmp_path / "chain_graphs.json"
        artifact_path.write_text(json.dumps(artifact))
        baseline_path = tmp_path / "baseline.json"
        run = self._guard_runner(artifact_path, baseline_path)

        assert run("--update-baseline").returncode == 0
        assert run().returncode == 0  # identical counters pass
        artifact["totals"]["chain"]["rule_invocations"] = 600  # +20%
        artifact_path.write_text(json.dumps(artifact))
        regression = run()
        assert regression.returncode == 1
        assert "REGRESSION" in regression.stderr
        artifact["totals"]["chain"]["rule_invocations"] = 400  # improvement
        artifact_path.write_text(json.dumps(artifact))
        assert run().returncode == 0

    def test_perf_guard_trendline_gates_super_linear_growth(self, tmp_path):
        import json

        def totals(factor):
            return {"chain": {"nodes_built": 100 * factor,
                              "nodes_created": 120 * factor,
                              "rule_invocations": 500 * factor,
                              "normalize_runs": 5 * factor},
                    "per_pair": {"nodes_built": 200 * factor,
                                 "nodes_created": 240 * factor,
                                 "rule_invocations": 900 * factor,
                                 "normalize_runs": 11 * factor}}

        artifact = {
            "schema": 2, "scale": 0.2, "scales": ["0.1", "0.2"],
            "totals": totals(2),
            "runs": {"0.1": {"totals": totals(1)},
                     "0.2": {"totals": totals(2)}},
        }
        artifact_path = tmp_path / "chain_graphs.json"
        artifact_path.write_text(json.dumps(artifact))
        baseline_path = tmp_path / "baseline.json"
        run = self._guard_runner(artifact_path, baseline_path)

        assert run("--update-baseline").returncode == 0
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema"] == 2
        assert baseline["growth"]["chain.rule_invocations"] == 2.0
        assert run().returncode == 0  # identical counters and growth pass

        # Super-linear growth regression: both absolutes stay within the
        # 10% tolerance (-5% and +9%) but the growth ratio climbs from
        # 2.0x to ~2.29x (+15%) — only the trendline gate catches it.
        artifact["runs"]["0.1"]["totals"]["chain"]["rule_invocations"] = 475
        artifact["runs"]["0.2"]["totals"]["chain"]["rule_invocations"] = 1090
        artifact["totals"]["chain"]["rule_invocations"] = 1090
        artifact_path.write_text(json.dumps(artifact))
        regression = run()
        assert regression.returncode == 1
        assert "super-linear" in regression.stderr

        # Sub-linear improvement never fails.
        artifact["runs"]["0.2"]["totals"]["chain"]["rule_invocations"] = 900
        artifact["totals"]["chain"]["rule_invocations"] = 900
        artifact_path.write_text(json.dumps(artifact))
        assert run().returncode == 0

        # Scale-set mismatch is an error, not silently ungated.
        artifact["runs"] = {"0.1": {"totals": totals(1)}}
        artifact["scales"] = ["0.1"]
        artifact_path.write_text(json.dumps(artifact))
        mismatch = run()
        assert mismatch.returncode == 1
        assert "scales" in mismatch.stderr

    def test_blame_triage_harvests_artifacts(self, tmp_path):
        import importlib.util
        import json
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "blame_triage", root / "benchmarks" / "blame_triage.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        good = tmp_path / "sweep.json"
        good.write_text(json.dumps({
            "rows": [{"benchmark": "a", "blame": {"gvn": 2, "dse": 1}},
                     {"benchmark": "b", "blame": {"gvn": 1}}],
            "chain_rows": [{"blame": {"licm": 4}}],
        }))
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        histogram = module.harvest_artifacts([good, junk])
        assert histogram == {"gvn": 3, "dse": 1, "licm": 4}
