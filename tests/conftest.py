"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.bench.corpus import small_test_corpus
from repro.ir import parse_function, parse_module


@pytest.fixture
def parse():
    """Parse a module from source text."""
    return parse_module


@pytest.fixture
def parse_one():
    """Parse a single function from source text."""
    return parse_function


@pytest.fixture(scope="session")
def mini_corpus():
    """A small generated corpus shared by integration tests (read-only!)."""
    return small_test_corpus(functions=6, seed=11)


LOOP_FUNCTION = """
define i32 @loopy(i32 %a, i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i32 [ 0, %entry ], [ %accnext, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %t = mul i32 %a, 2
  %accnext = add i32 %acc, %t
  %inext = add i32 %i, 1
  br label %loop
exit:
  ret i32 %acc
}
"""

DIAMOND_FUNCTION = """
define i32 @diamond(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %then, label %else
then:
  %x = add i32 %a, 1
  br label %join
else:
  %y = mul i32 %b, 2
  br label %join
join:
  %r = phi i32 [ %x, %then ], [ %y, %else ]
  ret i32 %r
}
"""

MEMORY_FUNCTION = """
define i32 @memops(i32 %a, i32 %b) {
entry:
  %p = alloca i32
  %q = alloca i32
  store i32 %a, i32* %p
  store i32 %b, i32* %q
  %x = load i32, i32* %p
  %y = load i32, i32* %q
  %r = add i32 %x, %y
  ret i32 %r
}
"""


@pytest.fixture
def loop_source():
    return LOOP_FUNCTION


@pytest.fixture
def diamond_source():
    return DIAMOND_FUNCTION


@pytest.fixture
def memory_source():
    return MEMORY_FUNCTION
