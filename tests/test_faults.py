"""Fault injection and the recovery machinery it drives.

Every test here runs a *seeded* :class:`~repro.validator.faults.FaultPlan`
against real machinery — steal-pool worker supervision, pool-batch
retry, pair watchdog timeouts, quarantine, sqlite flush retry, daemon
disconnect handling — and asserts the recovery contract: the run
completes, records match the fault-free run (modulo explicitly denied
pairs), and nothing synthetic ever enters the proof cache.
"""

import json
import pickle
import socket
import sqlite3
import time
from dataclasses import replace

import pytest

from repro.bench.corpus import small_test_corpus
from repro.transforms import PAPER_PIPELINE
from repro.validator import faults
from repro.validator.cache import ValidationCache
from repro.validator.config import DEFAULT_CONFIG
from repro.validator.driver import llvm_md, validate_module_batch
from repro.validator.faults import FaultPlan, FaultSpec, InjectedFault
from repro.validator.scheduler import RequestBudget
from repro.validator.scheduler.retry import RetryPolicy, retry_call
from repro.validator.validate import (UNCACHEABLE_REASONS, ValidationResult,
                                      validate_bounded)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


def signatures(report):
    return [record.signature() for record in report.records]


# -- the plan itself ---------------------------------------------------------
class TestFaultPlan:
    def test_firing_window_is_deterministic(self):
        plan = FaultPlan.of(FaultSpec("pair", "raise", "", 2, 2))
        fired = [faults.should_fire(plan, "pair", "fn") is not None
                 for _ in range(5)]
        assert fired == [False, True, True, False, False]
        # reset() rewinds the schedule to the first visit.
        faults.reset(plan)
        assert faults.should_fire(plan, "pair", "fn") is None
        assert faults.should_fire(plan, "pair", "fn") is not None

    def test_count_zero_fires_forever(self):
        plan = FaultPlan.of(FaultSpec("worker", "crash", "", 1, 0))
        assert all(faults.should_fire(plan, "worker", "x") is not None
                   for _ in range(10))

    def test_match_filters_by_detail(self):
        plan = FaultPlan.of(FaultSpec("pair", "raise", "victim", 1, 0))
        assert faults.should_fire(plan, "pair", "innocent") is None
        assert faults.should_fire(plan, "pair", "victim") is not None
        # Sites are independent: a "pair" spec never fires elsewhere.
        assert faults.should_fire(plan, "worker", "victim") is None

    def test_plan_is_hashable_and_picklable(self):
        plan = FaultPlan.crash_worker(match="fn3", at=2, seed=9)
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("nope", "crash")
        with pytest.raises(ValueError):
            FaultSpec("pair", "explode")
        with pytest.raises(ValueError):
            FaultSpec("pair", "crash", at=0)

    def test_make_error_mapping(self):
        enospc = faults.make_error("enospc", "cache-flush", "")
        assert isinstance(enospc, OSError) and enospc.errno != 0
        locked = faults.make_error("lock", "cache-flush", "")
        assert isinstance(locked, sqlite3.OperationalError)
        assert "locked" in str(locked)
        conn = faults.make_error("connection", "payload", "")
        assert isinstance(conn, ConnectionResetError)
        other = faults.make_error("", "pair", "fn")
        assert isinstance(other, InjectedFault)


# -- bounded retry -----------------------------------------------------------
class TestRetryCall:
    def test_retries_then_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
        assert retry_call(flaky, policy=policy, sleep=sleeps.append) == "ok"
        assert len(calls) == 3
        assert sleeps == [0.01, 0.02]

    def test_reraises_when_attempts_spent(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)

        def doomed():
            raise ValueError("persistent")

        with pytest.raises(ValueError):
            retry_call(doomed, policy=policy, sleep=lambda _: None)

    def test_retry_if_filters(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_call(wrong_kind, policy=RetryPolicy(max_attempts=5),
                       retry_if=lambda e: isinstance(e, OSError),
                       sleep=lambda _: None)
        assert len(calls) == 1

    def test_backoff_is_seed_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.05)
        assert list(zip(range(3), policy.backoff(7))) == \
            list(zip(range(3), policy.backoff(7)))
        assert next(policy.backoff(7)) != next(policy.backoff(8))

    def test_expired_budget_aborts_retry_loop(self):
        # The satellite contract: an expired RequestBudget must settle
        # denials, not spin a retry loop past its deadline.
        clock = [0.0]
        budget = RequestBudget(timeout=1.0, clock=lambda: clock[0])
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            clock[0] += 2.0  # the failure itself blows the deadline
            raise OSError("transient")

        with pytest.raises(OSError):
            retry_call(flaky, policy=RetryPolicy(max_attempts=10),
                       should_abort=lambda: budget.exhausted,
                       sleep=sleeps.append)
        assert len(calls) == 1  # no retry was scheduled past the deadline
        assert sleeps == []
        assert budget.exhausted


# -- pair timeouts -----------------------------------------------------------
class TestPairTimeout:
    def test_hung_pair_settles_as_timeout(self, parse):
        module = small_test_corpus(functions=2, seed=11)
        functions = [f for f in module.functions.values()
                     if not f.is_declaration]
        plan = FaultPlan.hang_pair(match="", seconds=5.0, at=1, count=1)
        config = replace(DEFAULT_CONFIG, fault_plan=plan, pair_timeout=0.2)
        start = time.monotonic()
        result = validate_bounded(functions[0], functions[0], config)
        assert time.monotonic() - start < 2.0  # interrupted, not slept out
        assert not result.is_success
        assert result.reason == "timeout"

    def test_timeout_results_never_enter_the_cache(self):
        cache = ValidationCache()
        for reason in UNCACHEABLE_REASONS:
            cache.put(("k", reason), ValidationResult(
                function_name="f", is_success=False, reason=reason,
                elapsed=0.0))
        assert all(cache.peek(("k", r)) is None for r in UNCACHEABLE_REASONS)

    def test_serial_run_survives_one_hang(self, mini_corpus):
        _, clean = llvm_md(mini_corpus, PAPER_PIPELINE, strategy="stepwise")
        faults.reset()
        plan = FaultPlan.hang_pair(match="", seconds=5.0, at=1, count=1)
        config = replace(DEFAULT_CONFIG, fault_plan=plan, pair_timeout=0.2,
                         chain_graphs=False)
        _, report = llvm_md(mini_corpus, PAPER_PIPELINE, config=config,
                            strategy="stepwise")
        assert len(report.records) == len(clean.records)
        # The hang touches at most one pair (count=1); a touched record
        # may settle as a "timeout" denial or salvage itself through the
        # whole-query fallback — either way "timeout" appears somewhere
        # in its signature.  Every *untouched* record matches the clean
        # run exactly.
        touched = [sig for sig in signatures(report)
                   if "timeout" in json.dumps(sig)]
        assert len(touched) <= 1
        clean_sigs = {sig["name"]: sig for sig in signatures(clean)}
        for sig in signatures(report):
            if "timeout" not in json.dumps(sig):
                assert sig == clean_sigs[sig["name"]]


# -- steal-pool supervision --------------------------------------------------
class TestStealSupervision:
    def test_killed_worker_respawns_and_run_completes(self, mini_corpus):
        base = replace(DEFAULT_CONFIG, executor="steal", concurrency=2)
        [(_, clean)] = validate_module_batch([mini_corpus], PAPER_PIPELINE,
                                             config=base, strategy="stepwise")
        faults.reset()
        plan = FaultPlan.of(
            FaultSpec("steal-dispatch", "crash", "", 2, 1), seed=7)
        config = replace(base, fault_plan=plan)
        [(_, chaotic)] = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config, strategy="stepwise")
        shard = chaotic.shard_stats or {}
        assert signatures(chaotic) == signatures(clean)
        assert shard.get("workers_respawned", 0) >= 1
        assert shard.get("item_retries", 0) >= 1
        assert shard.get("pool_degraded", 0) == 0  # no serial degradation

    def test_poison_pair_is_quarantined(self, mini_corpus):
        victim = next(f.name for f in mini_corpus.functions.values()
                      if not f.is_declaration)
        plan = FaultPlan.crash_worker(match=victim, at=1, count=0)
        config = replace(DEFAULT_CONFIG, executor="steal", concurrency=2,
                         fault_plan=plan, chain_graphs=False,
                         max_pair_retries=1)
        [(_, report)] = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config, strategy="whole")
        shard = report.shard_stats or {}
        assert shard.get("pairs_quarantined", 0) >= 1
        assert shard.get("pool_degraded", 0) == 0
        by_name = {sig["name"]: sig for sig in signatures(report)}
        assert by_name[victim]["reason"] == "quarantined"
        assert not by_name[victim]["validated"]
        # The quarantine is surgical: every other function still settles
        # with a genuine verdict.
        assert all(sig["reason"] != "quarantined"
                   for name, sig in by_name.items() if name != victim)

    def test_corrupted_payload_retries_the_item(self, mini_corpus):
        base = replace(DEFAULT_CONFIG, executor="steal", concurrency=2)
        [(_, clean)] = validate_module_batch([mini_corpus], PAPER_PIPELINE,
                                             config=base, strategy="stepwise")
        faults.reset()
        config = replace(base, fault_plan=FaultPlan.corrupt_payload())
        [(_, chaotic)] = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config, strategy="stepwise")
        shard = chaotic.shard_stats or {}
        assert signatures(chaotic) == signatures(clean)
        assert shard.get("item_retries", 0) >= 1
        assert shard.get("pool_degraded", 0) == 0


# -- pool-batch retry --------------------------------------------------------
class TestPoolRetry:
    def test_broken_batch_retries_on_a_fresh_pool(self, mini_corpus):
        base = replace(DEFAULT_CONFIG, executor="pool", concurrency=2)
        [(_, clean)] = validate_module_batch([mini_corpus], PAPER_PIPELINE,
                                             config=base, strategy="stepwise")
        faults.reset()
        config = replace(base, fault_plan=FaultPlan.crash_pool_batch())
        [(_, chaotic)] = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config, strategy="stepwise")
        shard = chaotic.shard_stats or {}
        assert signatures(chaotic) == signatures(clean)
        assert shard.get("workers_respawned", 0) >= 1
        assert shard.get("pool_degraded", 0) == 0

    def test_budget_denials_do_not_spin_retries(self, mini_corpus):
        # A crash under an already-exhausted budget must settle fast as
        # budget denials, not grind through respawn cycles per pair.
        plan = FaultPlan.crash_pool_batch()
        config = replace(DEFAULT_CONFIG, executor="pool", concurrency=2,
                         fault_plan=plan)
        budget = RequestBudget(max_pairs=1)
        [(_, report)] = validate_module_batch(
            [mini_corpus], PAPER_PIPELINE, config=config,
            strategy="stepwise", budget=budget)
        assert len(report.records) > 0
        assert budget.denials >= 1
        reasons = {sig["reason"] for sig in signatures(report)}
        assert "budget-exhausted" in reasons


# -- proof-store flush faults ------------------------------------------------
class TestStoreFaults:
    def _one_entry(self, cache):
        key = cache.key_for("aaa", "bbb", DEFAULT_CONFIG)
        cache.put(key, ValidationResult(function_name="f", is_success=True,
                                        reason="", elapsed=0.01))
        return key

    def test_locked_sqlite_flush_retries_then_persists(self, tmp_path):
        plan = FaultPlan.flush_error("lock", at=1, count=1)
        cache = ValidationCache(tmp_path, backend="sqlite", fault_plan=plan)
        key = self._one_entry(cache)
        assert cache.save() == 1
        stats = cache.stats()
        assert stats.get("store_errors", 0) == 0
        assert stats.get("store_retries", 0) >= 1
        faults.reset()
        fresh = ValidationCache(tmp_path, backend="sqlite")
        assert fresh.peek(key) is not None  # the retry really flushed

    def test_enospc_gives_up_without_crashing(self, tmp_path):
        plan = FaultPlan.flush_error("enospc", at=1, count=0)
        cache = ValidationCache(tmp_path, backend="sqlite", fault_plan=plan)
        self._one_entry(cache)
        cache.save()  # must not raise
        assert cache.stats().get("store_errors", 0) >= 1
        assert cache.stats().get("store_retries", 0) == 0  # not transient

    def test_json_flush_fault_is_absorbed(self, tmp_path):
        plan = FaultPlan.flush_error("enospc", at=1, count=0)
        cache = ValidationCache(tmp_path, backend="json", fault_plan=plan)
        self._one_entry(cache)
        cache.save()  # must not raise
        assert cache.stats().get("store_errors", 0) >= 1


# -- daemon disconnect -------------------------------------------------------
MODULE_TEXT = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  ret i32 %b
}
define i32 @g(i32 %y) {
entry:
  %c = add i32 %y, 1
  %d = sub i32 %c, 1
  ret i32 %d
}
"""


class TestDaemonDisconnect:
    def _request(self, port, body):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(b"POST /validate HTTP/1.1\r\nContent-Length: "
                     + str(len(body)).encode() + b"\r\n\r\n" + body)
        return sock

    def _read_all(self, sock):
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        sock.close()
        return data

    def _stats(self, port):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(b"GET /stats HTTP/1.1\r\n\r\n")
        data = self._read_all(sock)
        return json.loads(data.split(b"\r\n\r\n", 1)[1])

    def test_daemon_survives_mid_stream_disconnect(self):
        from repro.validator.service.daemon import (ValidationService,
                                                    serve_in_thread)
        service = ValidationService(replace(DEFAULT_CONFIG), port=0)
        thread = serve_in_thread(service)
        try:
            body = json.dumps({"module": MODULE_TEXT,
                               "label": "disconnect"}).encode()
            # Send a request, read a few head bytes, slam the socket shut
            # while records are still settling.
            sock = self._request(service.port, body)
            sock.recv(16)
            sock.close()
            # The worker finishes in the background; poll until the
            # daemon's bookkeeping settles.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                stats = self._stats(service.port)
                if stats["inflight"] == 0 and stats["client_disconnects"]:
                    break
                time.sleep(0.05)
            assert stats["inflight"] == 0
            assert stats["client_disconnects"] == 1
            assert stats["errors_total"] == 0
            # The daemon still serves complete streams afterwards.
            data = self._read_all(self._request(service.port, body))
            lines = data.split(b"\r\n\r\n", 1)[1].decode().strip().splitlines()
            kinds = [json.loads(line)["type"] for line in lines]
            assert kinds[-1] == "summary"
            assert kinds.count("record") == 2
        finally:
            service.request_stop()
            thread.join(timeout=10)
