"""The TCP steal transport: framing, handshake, requeue and the remote store.

Everything here runs against the real machinery — blocking-socket frames
against real sockets, handshakes against a live
:class:`~repro.validator.scheduler.transport.TcpStealPool` coordinator,
hand-rolled worker connections that die mid-item — and asserts the
transport contract: malformed wire data raises instead of
desynchronizing, incompatible peers are rejected at join time, a
disconnect costs exactly a respawn + requeue with the item delivered
byte-identically to the replacement, and losing the served proof store
degrades to re-validation, never an error.
"""

import json
import pickle
import socket
import struct
import time
from types import SimpleNamespace

import pytest

from repro.validator import faults
from repro.validator.cache import REMOTE_PREFIX, ValidationCache
from repro.validator.config import DEFAULT_CONFIG, ValidatorConfig
from repro.validator.scheduler.remote import ServedStore
from repro.validator.scheduler.steal import BrokenStealPool
from repro.validator.scheduler import transport
from repro.validator.scheduler.transport import (
    MAX_FRAME_BYTES,
    TRANSPORT_SCHEMA,
    ConnectionClosed,
    FrameError,
    TcpStealPool,
    config_fingerprint,
    pack_frame,
    recv_frame,
    send_frame,
    split_address,
)
from repro.validator.service.client import (
    ServiceBusy,
    ServiceError,
    ValidationClient,
)
from repro.validator.validate import ValidationResult


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


def sock_pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


# -- framing edge cases ------------------------------------------------------

class TestFraming:
    def test_roundtrip(self):
        left, right = sock_pair()
        try:
            send_frame(left, ("hello", 1, "fp", "worker"))
            assert recv_frame(right) == ("hello", 1, "fp", "worker")
        finally:
            left.close()
            right.close()

    def test_clean_close_between_frames(self):
        left, right = sock_pair()
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(right)
        finally:
            right.close()

    def test_truncated_header(self):
        left, right = sock_pair()
        left.sendall(b"\x00\x00")  # half a length prefix
        left.close()
        try:
            with pytest.raises(FrameError, match="truncated"):
                recv_frame(right)
        finally:
            right.close()

    def test_truncated_payload(self):
        left, right = sock_pair()
        frame = pack_frame(("item", 0, b"x" * 64))
        left.sendall(frame[:-10])
        left.close()
        try:
            with pytest.raises(FrameError, match="truncated"):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_rejected_before_read(self):
        left, right = sock_pair()
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        try:
            with pytest.raises(FrameError, match="oversized"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_payload_rejected_at_pack(self, monkeypatch):
        monkeypatch.setattr(transport, "MAX_FRAME_BYTES", 128)
        with pytest.raises(FrameError, match="exceeds"):
            pack_frame(b"x" * 256)

    def test_undecodable_payload(self):
        left, right = sock_pair()
        garbage = b"this is not a pickle"
        left.sendall(struct.pack(">I", len(garbage)) + garbage)
        try:
            with pytest.raises(FrameError, match="undecodable"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_split_address(self):
        assert split_address("127.0.0.1:8037") == ("127.0.0.1", 8037)
        with pytest.raises(ValueError):
            split_address("8037")
        with pytest.raises(ValueError):
            split_address(":8037")

    def test_fingerprint_pins_run_config(self):
        code_level = config_fingerprint()
        assert code_level == config_fingerprint()
        pinned = config_fingerprint(DEFAULT_CONFIG)
        assert pinned != code_level
        assert pinned == config_fingerprint(DEFAULT_CONFIG)


# -- handshake rejection against a live coordinator --------------------------

def hello(sock, schema=TRANSPORT_SCHEMA, fingerprint=None, role="worker"):
    if fingerprint is None:
        fingerprint = config_fingerprint()
    send_frame(sock, ("hello", schema, fingerprint, role))
    return recv_frame(sock)


class TestHandshake:
    @pytest.fixture()
    def pool(self):
        pool = TcpStealPool(1, None, listen="127.0.0.1:0",
                            connect_grace=2.0)
        yield pool
        pool.close()

    def connect(self, pool):
        sock = socket.create_connection(pool.address, timeout=5.0)
        sock.settimeout(5.0)
        return sock

    def test_matching_hello_is_welcomed(self, pool):
        sock = self.connect(pool)
        try:
            reply = hello(sock)
            assert reply[0] == "welcome"
            assert pool.coordinator.rejected == 0
        finally:
            sock.close()

    def test_schema_mismatch_rejected(self, pool):
        sock = self.connect(pool)
        try:
            reply = hello(sock, schema=TRANSPORT_SCHEMA + 1)
            assert reply[0] == "reject"
            assert "schema" in reply[1]
        finally:
            sock.close()

    def test_fingerprint_mismatch_rejected(self, pool):
        sock = self.connect(pool)
        try:
            reply = hello(sock, fingerprint="a" * 64)
            assert reply[0] == "reject"
            assert "fingerprint" in reply[1]
        finally:
            sock.close()

    def test_malformed_hello_rejected(self, pool):
        sock = self.connect(pool)
        try:
            send_frame(sock, ("greetings",))
            reply = recv_frame(sock)
            assert reply[0] == "reject"
            assert "malformed" in reply[1]
        finally:
            sock.close()

    def test_rejections_are_counted(self, pool):
        for _ in range(2):
            sock = self.connect(pool)
            try:
                assert hello(sock, schema=99)[0] == "reject"
            finally:
                sock.close()
        deadline = time.monotonic() + 5.0
        while pool.coordinator.rejected < 2:
            assert time.monotonic() < deadline
            time.sleep(0.01)


# -- disconnect mid-item: requeue parity -------------------------------------

class TestDisconnectRequeue:
    def join_and_take_item(self, pool):
        """Connect a hand-rolled worker and pull one item off the wire."""
        sock = socket.create_connection(pool.address, timeout=5.0)
        sock.settimeout(5.0)
        assert hello(sock)[0] == "welcome"
        send_frame(sock, ("ready",))
        frame = recv_frame(sock)
        assert frame[0] == "item"
        return sock, frame

    def test_disconnect_mid_item_requeues_byte_identical(self):
        pool = TcpStealPool(1, None, listen="127.0.0.1:0",
                            connect_grace=5.0)
        try:
            item = ("pair", SimpleNamespace(name="f"), 0, 1, DEFAULT_CONFIG)
            pool.send(0, tag=7, item=item)
            outstanding = {0: (7, item)}

            first, frame = self.join_and_take_item(pool)
            _, tag, payload = frame
            assert tag == 7
            assert pickle.loads(payload)[0] == 7
            first.close()  # die holding the lease

            with pytest.raises(BrokenStealPool) as excinfo:
                pool.receive(outstanding)
            assert excinfo.value.worker_id == 0
            pool.respawn(0)
            pool.send(0, tag=7, item=item)

            second, requeued = self.join_and_take_item(pool)
            try:
                # The replacement sees the item byte-for-byte.
                assert requeued == frame
                send_frame(second, ("result", 7, True, "settled"))
                assert pool.receive(outstanding) == (0, 7, True, "settled")
            finally:
                second.close()
            assert pool.respawns == 1
        finally:
            pool.close()

    def test_stale_death_after_settlement_is_ignored(self):
        pool = TcpStealPool(1, None, listen="127.0.0.1:0",
                            connect_grace=5.0)
        try:
            item = ("pair", SimpleNamespace(name="f"), 0, 1, DEFAULT_CONFIG)
            pool.send(0, tag=3, item=item)
            sock, _ = self.join_and_take_item(pool)
            send_frame(sock, ("result", 3, True, "done"))
            assert pool.receive({0: (3, item)}) == (0, 3, True, "done")
            sock.close()
            # The connection died *after* settling: receive must not
            # surface a death for work that is no longer outstanding.
            deadline = time.monotonic() + 5.0
            while pool.coordinator.live_workers > 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            pool.send(0, tag=4, item=item)
            replacement, frame = self.join_and_take_item(pool)
            try:
                assert frame[1] == 4
                send_frame(replacement, ("result", 4, True, "again"))
                assert pool.receive({0: (4, item)}) == (0, 4, True, "again")
            finally:
                replacement.close()
        finally:
            pool.close()

    def test_empty_fleet_breaks_unattributably(self):
        pool = TcpStealPool(1, None, listen="127.0.0.1:0",
                            connect_grace=0.2)
        try:
            pool.send(0, tag=1,
                      item=("pair", SimpleNamespace(name="f"), 0, 1,
                            DEFAULT_CONFIG))
            with pytest.raises(BrokenStealPool) as excinfo:
                pool.receive({0: None})
            assert excinfo.value.worker_id is None
        finally:
            pool.close()


# -- the remote proof store --------------------------------------------------

def make_result(name="f"):
    return ValidationResult(function_name=name, is_success=True,
                            reason="equal")


def make_key(cache, fp_before, fp_after):
    return cache.key_for(fp_before, fp_after, DEFAULT_CONFIG)


class TestRemoteStore:
    @pytest.fixture()
    def served(self, tmp_path):
        pool = TcpStealPool(1, None, listen="127.0.0.1:0",
                            store=ServedStore(tmp_path, backend="sqlite"))
        yield f"{REMOTE_PREFIX}{pool.address[0]}:{pool.address[1]}"
        pool.close()

    def test_roundtrip_and_batched_prefetch(self, served):
        writer = ValidationCache(served)
        key = make_key(writer, "src", "tgt")
        writer.put(key, make_result())
        assert writer.save() == 1

        reader = ValidationCache(served)
        assert reader.prefetch([key]) == 1
        found = reader.get(key, "f")
        assert found is not None and found.is_success
        assert found.reason == "equal"
        stats = reader.stats()
        assert stats["store_get_rpcs"] == 1
        assert stats["store_batched_gets"] == 1
        # The prefetch already answered this key: the get was local.
        assert stats["hits"] == 1

    def test_prefetch_remembers_absences(self, served):
        cache = ValidationCache(served)
        missing = make_key(cache, "a", "b")
        assert cache.prefetch([missing]) == 0
        rpcs_after_prefetch = cache.stats()["store_rpcs"]
        assert cache.get(missing, "f") is None
        # The batch already asked: a later miss costs no round trip.
        assert cache.stats()["store_rpcs"] == rpcs_after_prefetch

    def test_dead_address_degrades_to_memory(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        cache = ValidationCache(f"{REMOTE_PREFIX}127.0.0.1:{port}")
        key = make_key(cache, "src", "tgt")
        assert cache.get(key, "f") is None
        cache.put(key, make_result())
        # Flushing into the void degrades the store tier, silently.
        cache.save_if_dirty()
        assert cache.get(key, "f") is not None
        assert cache.stats()["store_errors"] >= 1


# -- config validation of the transport knobs --------------------------------

class TestConfigValidation:
    def test_defaults_are_pipe_and_unset(self):
        assert DEFAULT_CONFIG.steal_transport == "pipe"
        assert DEFAULT_CONFIG.steal_listen is None
        assert DEFAULT_CONFIG.steal_connect is None

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="steal transport"):
            ValidatorConfig(steal_transport="carrier-pigeon")

    def test_tcp_requires_steal_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ValidatorConfig(steal_transport="tcp", executor="pool")
        ValidatorConfig(steal_transport="tcp", executor="steal")

    def test_listen_requires_tcp(self):
        with pytest.raises(ValueError, match="steal_listen"):
            ValidatorConfig(steal_listen="127.0.0.1:9")

    def test_connect_and_listen_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ValidatorConfig(executor="steal", steal_transport="tcp",
                            steal_listen="127.0.0.1:9",
                            steal_connect="127.0.0.1:10")

    def test_addresses_must_be_host_port(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            ValidatorConfig(steal_connect="localhost")

    def test_network_fault_sites_registered(self):
        for site in ("conn-drop", "conn-delay", "handshake"):
            assert site in faults.SITES


# -- client-side 503 retries -------------------------------------------------

class _FakeResponse:
    def __init__(self, status, body=b"", retry_after=None, lines=()):
        self.status = status
        self._body = body
        self._retry_after = retry_after
        self._lines = list(lines)

    def read(self):
        return self._body

    def getheader(self, name):
        return self._retry_after

    def __iter__(self):
        return iter(self._lines)


class _FakeConnection:
    def close(self):
        pass


class TestClientRetries:
    def wire(self, client, responses):
        calls = []

        def fake_request(method, path, payload=None):
            calls.append(path)
            return _FakeConnection(), responses[min(len(calls) - 1,
                                                    len(responses) - 1)]
        client._request = fake_request
        return calls

    def ok_response(self):
        lines = [
            json.dumps({"type": "record", "name": "f"}).encode() + b"\n",
            json.dumps({"type": "summary", "validated": 1}).encode() + b"\n",
        ]
        return _FakeResponse(200, lines=lines)

    def busy_response(self, retry_after="0.25"):
        return _FakeResponse(503, body=b"queue full", retry_after=retry_after)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ValidationClient().validate(module="m", retries=-1)

    def test_zero_retries_surfaces_busy(self):
        client = ValidationClient()
        self.wire(client, [self.busy_response()])
        with pytest.raises(ServiceBusy) as excinfo:
            client.validate(module="m")
        assert excinfo.value.retry_after == 0.25

    def test_retries_absorb_busy_and_honor_retry_after(self):
        client = ValidationClient()
        calls = self.wire(client, [self.busy_response(),
                                   self.busy_response(),
                                   self.ok_response()])
        sleeps = []
        result = client.validate(module="m", retries=2,
                                 sleep=sleeps.append)
        assert len(calls) == 3
        assert result["summary"]["validated"] == 1
        assert [r["name"] for r in result["records"]] == ["f"]
        # Each wait is floored by the daemon's Retry-After hint.
        assert len(sleeps) == 2
        assert all(delay >= 0.25 for delay in sleeps)

    def test_exhausted_retries_raise_the_last_busy(self):
        client = ValidationClient()
        calls = self.wire(client, [self.busy_response()])
        with pytest.raises(ServiceBusy):
            client.validate(module="m", retries=2, sleep=lambda _d: None)
        assert len(calls) == 3

    def test_non_busy_errors_never_retry(self):
        client = ValidationClient()
        calls = self.wire(client, [_FakeResponse(500, body=b"boom")])
        with pytest.raises(ServiceError, match="HTTP 500"):
            client.validate(module="m", retries=5, sleep=lambda _d: None)
        assert len(calls) == 1
