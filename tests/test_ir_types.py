"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    IntType,
    LabelType,
    PointerType,
    VoidType,
    int_type,
    ptr,
    to_signed,
    to_unsigned,
    truncate_unsigned,
)


class TestIntType:
    def test_equality_is_structural(self):
        assert IntType(32) == IntType(32)
        assert IntType(32) != IntType(64)
        assert hash(IntType(8)) == hash(IntType(8))

    def test_singletons_match_fresh_instances(self):
        assert I32 == IntType(32)
        assert I1 == IntType(1)
        assert I64 == int_type(64)

    def test_str(self):
        assert str(IntType(16)) == "i16"

    def test_bounds(self):
        assert IntType(8).max_signed == 127
        assert IntType(8).min_signed == -128
        assert IntType(8).max_unsigned == 255

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(-4)

    def test_is_bool(self):
        assert IntType(1).is_bool()
        assert not IntType(32).is_bool()
        assert IntType(32).is_integer()


class TestPointerAndAggregateTypes:
    def test_pointer_equality(self):
        assert PointerType(I32) == ptr(IntType(32))
        assert PointerType(I32) != PointerType(I64)

    def test_pointer_str(self):
        assert str(ptr(ptr(I32))) == "i32**"

    def test_array_type(self):
        array = ArrayType(I32, 4)
        assert str(array) == "[4 x i32]"
        assert array == ArrayType(IntType(32), 4)
        assert array != ArrayType(I32, 5)

    def test_array_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_function_type(self):
        signature = FunctionType(I32, [I32, ptr(I32)])
        assert str(signature) == "i32 (i32, i32*)"
        assert signature == FunctionType(I32, [I32, ptr(I32)])
        assert signature != FunctionType(I32, [I32])

    def test_void_and_label(self):
        assert VoidType() == VoidType()
        assert LabelType() == LabelType()
        assert VoidType().is_void()
        assert not VoidType().is_first_class()
        assert I32.is_first_class()


class TestBitManipulation:
    def test_truncate_unsigned(self):
        assert truncate_unsigned(256, 8) == 0
        assert truncate_unsigned(257, 8) == 1
        assert truncate_unsigned(-1, 8) == 255

    def test_to_signed(self):
        assert to_signed(255, 8) == -1
        assert to_signed(127, 8) == 127
        assert to_signed(128, 8) == -128

    def test_to_unsigned(self):
        assert to_unsigned(-1, 8) == 255
        assert to_unsigned(5, 8) == 5

    @pytest.mark.parametrize("value", [-130, -1, 0, 1, 127, 128, 255, 300])
    def test_roundtrip_signed_unsigned(self, value):
        bits = 8
        assert to_signed(to_unsigned(value, bits), bits) == to_signed(value, bits)
