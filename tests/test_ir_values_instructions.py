"""Unit tests for IR values and instruction classes."""

import pytest

from repro.ir import (
    Alloca,
    Argument,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    ConstantInt,
    Function,
    FunctionType,
    GetElementPtr,
    GlobalVariable,
    ICmp,
    I32,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UndefValue,
    Unreachable,
    const_bool,
    const_int,
    ptr,
)
from repro.ir.module import BasicBlock


class TestConstants:
    def test_constant_wraps_to_signed(self):
        assert ConstantInt(I32, 2**31).value == -(2**31)
        assert const_int(-1, 8).value == -1
        assert const_int(255, 8).value == -1

    def test_constant_equality(self):
        assert const_int(5) == const_int(5)
        assert const_int(5) != const_int(6)
        assert const_int(5, 32) != const_int(5, 64)

    def test_unsigned_view(self):
        assert const_int(-1, 8).unsigned == 255

    def test_bool_constants(self):
        assert const_bool(True).value == 1
        assert const_bool(False).is_zero()

    def test_undef(self):
        assert UndefValue(I32) == UndefValue(I32)
        assert UndefValue(I32).ref() == "undef"

    def test_global_variable_has_pointer_type(self):
        g = GlobalVariable("g", I32, const_int(3))
        assert g.type == ptr(I32)
        assert g.value_type == I32
        assert g.ref() == "@g"


class TestBinaryAndCompare:
    def test_binary_operator_basic(self):
        a, b = Argument(I32, "a"), Argument(I32, "b")
        add = BinaryOperator("add", a, b)
        assert add.opcode == "add"
        assert add.lhs is a and add.rhs is b
        assert add.type == I32
        assert add.is_commutative()
        assert not BinaryOperator("sub", a, b).is_commutative()

    def test_unknown_opcode_rejected(self):
        a = Argument(I32, "a")
        with pytest.raises(ValueError):
            BinaryOperator("frobnicate", a, a)

    def test_icmp_result_is_i1(self):
        a = Argument(I32, "a")
        cmp = ICmp("slt", a, const_int(3))
        assert cmp.type.is_bool()
        with pytest.raises(ValueError):
            ICmp("weird", a, a)

    def test_replace_operand(self):
        a, b = Argument(I32, "a"), Argument(I32, "b")
        add = BinaryOperator("add", a, a)
        assert add.replace_operand(a, b) == 2
        assert add.lhs is b and add.rhs is b


class TestMemoryInstructions:
    def test_alloca_type(self):
        slot = Alloca(I32)
        assert slot.type == ptr(I32)
        assert slot.count is None

    def test_load_store_types(self):
        slot = Alloca(I32)
        load = Load(slot)
        assert load.type == I32
        store = Store(const_int(1), slot)
        assert not store.has_result()
        assert store.has_side_effects()

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(const_int(3))
        with pytest.raises(TypeError):
            Store(const_int(1), const_int(2))

    def test_gep(self):
        slot = Alloca(I32)
        gep = GetElementPtr(I32, slot, [const_int(2)])
        assert gep.pointer is slot
        assert len(gep.indices) == 1
        assert gep.type == ptr(I32)


class TestControlFlow:
    def test_unconditional_branch(self):
        target = BasicBlock("bb")
        br = Branch(target)
        assert not br.is_conditional
        assert br.targets == [target]
        assert br.is_terminator()

    def test_conditional_branch(self):
        t, f = BasicBlock("t"), BasicBlock("f")
        br = Branch(const_bool(True), t, f)
        assert br.is_conditional
        assert br.targets == [t, f]
        br.replace_target(f, t)
        assert br.targets == [t, t]

    def test_branch_arity_check(self):
        with pytest.raises(TypeError):
            Branch(const_bool(True), BasicBlock("x"))

    def test_ret(self):
        assert Ret().value is None
        assert Ret(const_int(1)).value == const_int(1)
        assert Ret().is_terminator()
        assert Unreachable().is_terminator()


class TestPhiAndCall:
    def test_phi_incoming(self):
        b1, b2 = BasicBlock("b1"), BasicBlock("b2")
        phi = Phi(I32, [(const_int(1), b1), (const_int(2), b2)])
        assert len(phi.incoming) == 2
        assert phi.incoming_for(b1) == const_int(1)
        assert phi.incoming_for(BasicBlock("other")) is None
        phi.set_incoming(b2, const_int(9))
        assert phi.incoming_for(b2) == const_int(9)
        phi.remove_incoming(b1)
        assert len(phi.incoming) == 1

    def test_phi_set_incoming_missing_raises(self):
        phi = Phi(I32, [])
        with pytest.raises(KeyError):
            phi.set_incoming(BasicBlock("nope"), const_int(1))

    def test_call_attributes(self):
        readonly = Function("ro", FunctionType(I32, [I32]), attributes=["readonly"])
        readnone = Function("rn", FunctionType(I32, [I32]), attributes=["readnone"])
        plain = Function("pl", FunctionType(I32, [I32]))
        assert Call(readonly, [const_int(1)], I32).is_readonly()
        assert Call(readnone, [const_int(1)], I32).is_readnone()
        call = Call(plain, [const_int(1)], I32)
        assert call.may_read_memory() and call.may_write_memory()
        assert not Call(readnone, [const_int(1)], I32).may_read_memory()
        assert Call(readonly, [const_int(1)], I32).may_read_memory()
        assert not Call(readonly, [const_int(1)], I32).may_write_memory()

    def test_side_effect_classification(self):
        a = Argument(I32, "a")
        assert not BinaryOperator("add", a, a).has_side_effects()
        readnone = Function("rn", FunctionType(I32, [I32]), attributes=["readnone"])
        assert not Call(readnone, [a], I32).has_side_effects()
        plain = Function("pl", FunctionType(I32, [I32]))
        assert Call(plain, [a], I32).has_side_effects()
