"""The validation service: parity, admission, budgets, watch-loop fixes.

The contract test for the daemon is record parity: verdict signatures
streamed over the wire must be byte-identical to what
``validate_module_batch`` computes in-process for the same module and
pipeline — on a cheap corpus subset here, on all twelve paper corpora in
``benchmarks/service_guard.py``.  Around it: admission control (503 +
``Retry-After``), per-request budgets settling partial records with
``kept_prefix`` salvage instead of errors (and never poisoning the
cache), the ``/stats`` endpoint, graceful shutdown, and the watch-mode
polling-loop bugfixes (deleted/half-written sources, same-second
rewrites, executor cleanup on error).
"""

import json
import os
import threading
import time

import pytest

from repro.bench.corpus import BENCHMARKS_BY_NAME, build_corpus
from repro.errors import ParseError
from repro.ir import parse_module
from repro.transforms.pass_manager import PAPER_PIPELINE
from repro.validator import (
    BUDGET_EXHAUSTED,
    DEFAULT_CONFIG,
    RequestBudget,
    Revalidator,
    ValidatorConfig,
    is_budget_result,
    validate_module_batch,
)
from repro.validator import watch
from repro.validator.scheduler import admit_work
from repro.validator.service import (
    ServiceBusy,
    ServiceError,
    ValidationClient,
    ValidationService,
    serve_in_thread,
)
from repro.validator.watch import watch_source

#: Same cheap corpus subset as test_incremental.py; the CI guard extends
#: service parity to all twelve benchmarks.
CORPORA = ("sqlite", "milc", "libquantum")

TINY = """
define i32 @f(i32 %a, i32* %p) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %a, 1
  store i32 %x, i32* %p
  store i32 %y, i32* %p
  %r = add i32 %x, %y
  ret i32 %r
}
"""

#: Two distinct transformed functions (distinct bodies, so their pair
#: keys never dedup/cache-share): the budget salvage tests need a second
#: chain to run out of budget partway through.
TWO_FUNCS = TINY + """
define i32 @g(i32 %a, i32* %p) {
entry:
  %x = mul i32 %a, 3
  %y = mul i32 %a, 3
  store i32 %x, i32* %p
  store i32 %y, i32* %p
  %r = add i32 %x, %y
  ret i32 %r
}
"""


def _norm(signature):
    """Signatures as the wire sees them (tuples become JSON arrays)."""
    return json.loads(json.dumps(signature))


_COLD_MEMO = {}


def _cold_signatures(name, scale=0.1):
    if name not in _COLD_MEMO:
        module = build_corpus(BENCHMARKS_BY_NAME[name], scale)
        results = validate_module_batch([module], PAPER_PIPELINE,
                                        DEFAULT_CONFIG, strategy="stepwise")
        _COLD_MEMO[name] = [_norm(record.signature())
                            for record in results[0][1].records]
    return _COLD_MEMO[name]


# -- RequestBudget / admit_work unit behavior -----------------------------

class TestRequestBudget:
    def test_pair_cap(self):
        budget = RequestBudget(max_pairs=2)
        assert not budget.exhausted and budget.remaining_pairs() == 2
        budget.charge(2)
        assert budget.exhausted and budget.remaining_pairs() == 0
        assert not budget.expired  # pair cap is not the deadline axis

    def test_deadline(self):
        now = [0.0]
        budget = RequestBudget(timeout=5.0, clock=lambda: now[0])
        assert not budget.expired
        now[0] = 5.0
        assert budget.expired and budget.exhausted

    def test_unbounded(self):
        budget = RequestBudget()
        budget.charge(10_000)
        assert not budget.exhausted and budget.remaining_pairs() is None

    def test_synthetic_result(self):
        budget = RequestBudget(max_pairs=1)
        budget.charge()
        result = budget.result("f")
        assert result.reason == BUDGET_EXHAUSTED and not result.is_success
        assert is_budget_result(result)
        assert budget.stats() == {"budget_pairs_spent": 1,
                                  "budget_denied_pairs": 1,
                                  "budget_exhausted": 1}

    def test_admit_work_truncates_pairs_then_chains(self):
        budget = RequestBudget(max_pairs=3)
        pairs = {"k1": 1, "k2": 2, "k3": 3, "k4": 4}
        chains = {("a", "b"): "chain"}
        admitted_pairs, admitted_chains = admit_work(pairs, chains, budget)
        assert len(admitted_pairs) == 3
        assert admitted_chains == {}  # budget spent before the chain

    def test_admit_work_charges_chain_length(self):
        budget = RequestBudget(max_pairs=10)
        _, admitted = admit_work({}, {("a", "b", "c"): "chain"}, budget)
        assert len(admitted) == 1 and budget.pairs_spent == 3


# -- budgeted drivers ------------------------------------------------------

class TestBudgetedValidation:
    def test_batch_salvages_partial_records(self):
        module = parse_module(TWO_FUNCS, name="two")
        budget = RequestBudget(max_pairs=1)
        results = validate_module_batch([module], PAPER_PIPELINE,
                                        DEFAULT_CONFIG, strategy="stepwise",
                                        budget=budget)
        _, report = results[0]
        reasons = [record.signature()["reason"] for record in report.records]
        assert BUDGET_EXHAUSTED in reasons
        assert report.shard_stats["budget_exhausted"] == 1
        assert report.shard_stats["budget_denied_pairs"] > 0
        for record in report.records:
            if record.signature()["reason"] == BUDGET_EXHAUSTED:
                assert not record.validated
                # Salvage invariant: the denied record keeps exactly its
                # validated prefix of per-pass verdicts.
                verdicts = list(record.pass_verdicts.values())
                prefix = 0
                for verdict in verdicts:
                    if not verdict.is_success:
                        break
                    prefix += 1
                assert record.kept_prefix == prefix

    def test_budget_verdicts_never_poison_the_cache(self):
        revalidator = Revalidator(ValidatorConfig(incremental=True))
        try:
            module = parse_module(TWO_FUNCS, name="two")
            budget = RequestBudget(max_pairs=1)
            _, denied = revalidator.revalidate(module, PAPER_PIPELINE,
                                               label="poison", budget=budget)
            assert any(record.signature()["reason"] == BUDGET_EXHAUSTED
                       for record in denied.records)
            # Same request without a budget: every verdict must be real
            # (the denials above were never cached), matching cold.
            module2 = parse_module(TWO_FUNCS, name="two")
            _, clean = revalidator.revalidate(module2, PAPER_PIPELINE,
                                              label="poison")
            assert all(record.signature()["reason"] != BUDGET_EXHAUSTED
                       for record in clean.records)
            cold = validate_module_batch(
                [parse_module(TWO_FUNCS, name="two")], PAPER_PIPELINE,
                DEFAULT_CONFIG, strategy="stepwise")
            assert ([_norm(r.signature()) for r in clean.records]
                    == [_norm(r.signature()) for r in cold[0][1].records])
        finally:
            revalidator.close()

    def test_revalidator_salvages_second_chain(self):
        revalidator = Revalidator(ValidatorConfig(incremental=True))
        try:
            module = parse_module(TWO_FUNCS, name="two")
            # Enough budget for all of @f plus one pair of @g.
            cold = validate_module_batch(
                [parse_module(TWO_FUNCS, name="two")], PAPER_PIPELINE,
                DEFAULT_CONFIG, strategy="stepwise")
            f_record = next(r for r in cold[0][1].records if r.name == "f")
            assert f_record.validated and len(f_record.pass_verdicts) >= 1
            budget = RequestBudget(max_pairs=len(f_record.pass_verdicts) + 1)
            _, report = revalidator.revalidate(module, PAPER_PIPELINE,
                                               label="salvage", budget=budget)
            by_name = {record.name: record for record in report.records}
            assert by_name["f"].validated
            g_record = by_name["g"]
            assert g_record.signature()["reason"] == BUDGET_EXHAUSTED
            assert g_record.kept_prefix == 1  # the one affordable pair
        finally:
            revalidator.close()

    def test_on_record_streams_in_settlement_order(self):
        revalidator = Revalidator(ValidatorConfig(incremental=True))
        try:
            module = parse_module(TWO_FUNCS, name="two")
            seen = []
            _, report = revalidator.revalidate(
                module, PAPER_PIPELINE, label="stream",
                on_record=lambda record: seen.append(record.name))
            assert seen == [record.name for record in report.records]
        finally:
            revalidator.close()


# -- the watch-loop fixes --------------------------------------------------

class TestWatchLoop:
    def test_source_stamp_missing_file(self, tmp_path):
        assert watch._source_stamp(tmp_path / "gone.ll") is None
        path = tmp_path / "here.ll"
        path.write_text(TINY)
        status = path.stat()
        assert watch._source_stamp(path) == (status.st_mtime_ns,
                                             status.st_size)

    def test_watch_survives_deletion_and_reappearance(self, tmp_path, capsys):
        path = tmp_path / "m.ll"
        path.write_text(TINY)
        seen = []
        actions = iter([
            lambda: path.unlink(),                     # poll 1: gone
            lambda: None,                              # poll 2: still gone
            lambda: path.write_text(TINY + "\n;x\n"),  # poll 3: back, changed
        ])
        runs = watch_source(
            path, lambda: parse_module(path.read_text(), name="m"),
            lambda module: seen.append(module.name),
            sleep=lambda _: next(actions)(), max_polls=3)
        out = capsys.readouterr().out
        assert "disappeared" in out
        assert out.count("disappeared") == 1  # warn once, not per poll
        assert runs == 1 and seen == ["m"]

    def test_watch_survives_half_written_source(self, tmp_path, capsys):
        path = tmp_path / "m.ll"
        path.write_text(TINY)
        seen = []
        actions = iter([
            lambda: path.write_text("define i32 @f("),  # poll 1: truncated
            lambda: path.write_text(TINY + "\n;ok\n"),  # poll 2: completed
        ])
        runs = watch_source(
            path, lambda: parse_module(path.read_text(), name="m"),
            lambda module: seen.append(module.name),
            sleep=lambda _: next(actions)(), max_polls=2)
        assert "could not load" in capsys.readouterr().out
        assert runs == 1 and seen == ["m"]

    def test_watch_load_oserror_does_not_crash(self, tmp_path, capsys):
        path = tmp_path / "m.ll"
        path.write_text(TINY)

        def load():
            raise OSError("transient read failure")

        runs = watch_source(
            path, load, lambda module: pytest.fail("must not revalidate"),
            sleep=lambda _: path.write_text(TINY + "\n;y\n"), max_polls=1)
        assert runs == 0
        assert "could not load" in capsys.readouterr().out

    def test_watch_detects_same_timestamp_rewrite(self, tmp_path):
        path = tmp_path / "m.ll"
        path.write_text(TINY)
        stamp_ns = path.stat().st_mtime_ns
        seen = []

        def rewrite(_):
            # A rewrite the old ``st_mtime ==`` check could never see:
            # identical timestamp, different content.
            path.write_text(TINY + "\n; rewritten\n")
            os.utime(path, ns=(stamp_ns, stamp_ns))

        os.utime(path, ns=(stamp_ns, stamp_ns))
        runs = watch_source(
            path, lambda: parse_module(path.read_text(), name="m"),
            lambda module: seen.append(module.name),
            sleep=rewrite, max_polls=1)
        assert runs == 1 and seen == ["m"]

    def test_main_closes_revalidator_on_error(self, tmp_path, monkeypatch):
        closed = []

        def boom(self, *args, **kwargs):
            raise RuntimeError("mid-run failure")

        monkeypatch.setattr(watch.Revalidator, "revalidate", boom)
        monkeypatch.setattr(watch.Revalidator, "close",
                            lambda self: closed.append(True))
        source = tmp_path / "m.ll"
        source.write_text(TINY)
        with pytest.raises(RuntimeError):
            watch.main([str(source), "--once"])
        assert closed == [True]


# -- the daemon ------------------------------------------------------------

@pytest.fixture(scope="module")
def daemon():
    service = ValidationService(
        ValidatorConfig(service_port=0, max_inflight=8))
    thread = serve_in_thread(service)
    yield service
    service.request_stop()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def client(daemon):
    return ValidationClient(port=daemon.port)


class TestServiceParity:
    @pytest.mark.parametrize("name", CORPORA)
    def test_record_parity_with_batch_driver(self, client, name):
        out = client.validate(corpus=name, scale=0.1, label=f"parity-{name}")
        streamed = [record["signature"] for record in out["records"]]
        assert streamed == _cold_signatures(name)

    def test_concurrent_requests_all_hold_parity(self, client):
        results = {}
        errors = []

        def submit(name):
            try:
                out = client.validate(corpus=name, scale=0.1,
                                      label=f"conc-{name}")
                results[name] = [r["signature"] for r in out["records"]]
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((name, exc))

        threads = [threading.Thread(target=submit, args=(name,))
                   for name in CORPORA]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for name in CORPORA:
            assert results[name] == _cold_signatures(name)

    def test_warm_repeat_hits_cache(self, client):
        client.validate(corpus="sqlite", scale=0.1, label="warm")
        out = client.validate(corpus="sqlite", scale=0.1, label="warm")
        cache = out["summary"]["cache"]
        assert cache["hit_rate"] >= 0.95
        assert out["summary"]["shard_stats"]["pairs_skipped_unchanged"] > 0

    def test_module_text_round_trip(self, client):
        out = client.validate(module=TINY, passes=["gvn", "dse"],
                              label="tiny")
        assert [r["signature"]["name"] for r in out["records"]] == ["f"]
        assert out["summary"]["functions"] == 1

    def test_budget_returns_partial_records_not_errors(self, client):
        out = client.validate(module=TWO_FUNCS, passes=list(PAPER_PIPELINE),
                              label="budget", max_pairs=1)
        reasons = [record["signature"]["reason"] for record in out["records"]]
        assert BUDGET_EXHAUSTED in reasons
        assert len(out["records"]) == 2  # every function still reported
        budget = out["summary"]["budget"]
        assert budget["budget_exhausted"] == 1
        assert budget["budget_denied_pairs"] > 0

    def test_bad_module_is_a_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.validate(module="define i32 @broken(")

    def test_missing_payload_is_a_400(self, daemon):
        from http.client import HTTPConnection
        connection = HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        connection.request("POST", "/validate", body=b"{}",
                           headers={"Content-Type": "application/json"})
        assert connection.getresponse().status == 400
        connection.close()

    def test_unknown_route_is_a_404(self, daemon):
        from http.client import HTTPConnection
        connection = HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        connection.request("GET", "/nope")
        assert connection.getresponse().status == 404
        connection.close()

    def test_unknown_corpus_is_a_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.validate(corpus="not-a-benchmark")

    def test_stats_endpoint(self, client, daemon):
        stats = client.stats()
        assert stats["requests_total"] >= 1
        assert stats["max_inflight"] == 8
        assert stats["revalidations"] == daemon.revalidator.runs
        assert "hits" in stats["cache"]
        assert stats["engine_totals"]  # accumulated across requests


class TestAdmissionControl:
    def test_reject_all_when_max_inflight_is_zero(self):
        service = ValidationService(
            ValidatorConfig(service_port=0, max_inflight=0))
        thread = serve_in_thread(service)
        try:
            client = ValidationClient(port=service.port)
            with pytest.raises(ServiceBusy) as excinfo:
                client.validate(corpus="libquantum", scale=0.1)
            assert excinfo.value.retry_after >= 1.0
            assert client.stats()["rejected_total"] == 1
        finally:
            service.request_stop()
            thread.join(timeout=10)

    def test_queue_full_rejects_with_retry_after(self):
        import asyncio

        service = ValidationService(
            ValidatorConfig(service_port=0, max_inflight=1))
        thread = serve_in_thread(service)
        try:
            client = ValidationClient(port=service.port)
            # Hold the revalidator lock so an admitted request occupies
            # the one in-flight slot deterministically.
            asyncio.run_coroutine_threadsafe(
                service._lock.acquire(), service._loop).result(timeout=5)
            first = {}
            blocked = threading.Thread(
                target=lambda: first.update(
                    client.validate(corpus="libquantum", scale=0.1,
                                    label="held")))
            blocked.start()
            deadline = time.monotonic() + 5
            while service._inflight < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service._inflight == 1
            with pytest.raises(ServiceBusy):
                client.validate(corpus="libquantum", scale=0.1)
            service._loop.call_soon_threadsafe(service._lock.release)
            blocked.join(timeout=60)
            assert first["summary"]["functions"] >= 1
            assert client.stats()["rejected_total"] == 1
        finally:
            service.request_stop()
            thread.join(timeout=10)


class TestShutdown:
    def test_shutdown_drains_and_saves(self, tmp_path):
        cache_dir = tmp_path / "proofs"
        service = ValidationService(
            ValidatorConfig(service_port=0, max_inflight=2,
                            cache_dir=str(cache_dir), cache_backend="json"))
        thread = serve_in_thread(service)
        client = ValidationClient(port=service.port)
        client.validate(corpus="libquantum", scale=0.1)
        assert client.shutdown()["draining"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        # The drain's save_if_dirty persisted the proofs.
        assert (cache_dir / "validation_cache.json").exists()
        # And a drained daemon no longer answers.
        with pytest.raises(ServiceError):
            client.stats()
