"""Tests for the IR verifier and the reference interpreter."""

import pytest

from repro.errors import InterpreterError, VerificationError
from repro.ir import (
    Interpreter,
    parse_module,
    run_function,
    verify_function,
    verify_module,
)


class TestVerifier:
    def test_accepts_well_formed(self, loop_source, diamond_source, memory_source):
        for source in (loop_source, diamond_source, memory_source):
            verify_module(parse_module(source))

    def test_rejects_missing_terminator(self, parse):
        module = parse("define i32 @f() {\nentry:\n  ret i32 1\n}")
        fn = module.get_function("f")
        fn.entry.instructions.pop()
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_rejects_phi_with_wrong_predecessors(self, diamond_source, parse):
        module = parse(diamond_source)
        fn = module.get_function("diamond")
        phi = fn.block("join").phis()[0]
        phi.remove_incoming(fn.block("then"))
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_rejects_use_before_def_in_block(self, parse):
        module = parse("define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  ret i32 %x\n}")
        fn = module.get_function("f")
        add = fn.entry.instructions[0]
        ret = fn.entry.instructions[1]
        fn.entry.instructions[:] = [ret, add]
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_rejects_non_dominating_definition(self, diamond_source, parse):
        module = parse(diamond_source)
        fn = module.get_function("diamond")
        then_value = fn.block("then").instructions[0]
        ret = fn.block("join").terminator
        ret.operands[0] = then_value  # 'then' does not dominate 'join'
        # Remove the phi so its own use does not mask the error.
        phi = fn.block("join").phis()[0]
        fn.block("join").remove(phi)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_rejects_type_mismatch(self, parse):
        module = parse("define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  ret i32 %x\n}")
        fn = module.get_function("f")
        from repro.ir import const_int

        fn.entry.instructions[0].operands[1] = const_int(1, 64)
        with pytest.raises(VerificationError):
            verify_function(fn)


class TestInterpreter:
    def test_arithmetic(self, parse):
        module = parse(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %s = add i32 %a, %b
              %d = sub i32 %s, 3
              %m = mul i32 %d, %d
              ret i32 %m
            }
            """
        )
        assert run_function(module, "f", [5, 6]).return_value == 64

    def test_wrapping_arithmetic(self, parse):
        module = parse(
            "define i8 @f(i8 %a) {\nentry:\n  %x = add i8 %a, 1\n  ret i8 %x\n}"
        )
        assert run_function(module, "f", [127]).return_value == -128

    def test_division_semantics(self, parse):
        module = parse(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %q = sdiv i32 %a, %b\n  ret i32 %q\n}"
        )
        assert run_function(module, "f", [-7, 2]).return_value == -3  # truncates toward zero
        with pytest.raises(InterpreterError):
            run_function(module, "f", [1, 0])

    def test_branches_and_phis(self, diamond_source, parse):
        module = parse(diamond_source)
        assert run_function(module, "diamond", [1, 5]).return_value == 2   # then: a+1
        assert run_function(module, "diamond", [9, 5]).return_value == 10  # else: b*2

    def test_loop(self, loop_source, parse):
        module = parse(loop_source)
        assert run_function(module, "loopy", [3, 4]).return_value == 3 * 2 * 4
        assert run_function(module, "loopy", [3, 0]).return_value == 0

    def test_memory(self, memory_source, parse):
        module = parse(memory_source)
        assert run_function(module, "memops", [11, 31]).return_value == 42

    def test_globals(self, parse):
        module = parse(
            """
            @g = global i32 10
            define i32 @f(i32 %a) {
            entry:
              %v = load i32, i32* @g
              store i32 %a, i32* @g
              %w = load i32, i32* @g
              %r = add i32 %v, %w
              ret i32 %r
            }
            """
        )
        assert run_function(module, "f", [5]).return_value == 15

    def test_call_defined_function(self, parse):
        module = parse(
            """
            define i32 @inc(i32 %x) {
            entry:
              %r = add i32 %x, 1
              ret i32 %r
            }
            define i32 @f(i32 %a) {
            entry:
              %r = call i32 @inc(i32 %a)
              ret i32 %r
            }
            """
        )
        assert run_function(module, "f", [41]).return_value == 42

    def test_external_calls_are_deterministic(self, parse):
        module = parse(
            """
            declare i32 @ext(i32 %x) readonly
            define i32 @f(i32 %a) {
            entry:
              %r1 = call i32 @ext(i32 %a)
              %r2 = call i32 @ext(i32 %a)
              %d = sub i32 %r1, %r2
              ret i32 %d
            }
            """
        )
        assert run_function(module, "f", [3]).return_value == 0

    def test_step_budget(self, parse):
        module = parse(
            """
            define i32 @spin() {
            entry:
              br label %loop
            loop:
              br label %loop
            }
            """
        )
        with pytest.raises(InterpreterError):
            run_function(module, "spin", [], max_steps=1000)

    def test_null_pointer_deref(self, parse):
        module = parse(
            "define i32 @f(i32* %p) {\nentry:\n  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        with pytest.raises(InterpreterError):
            run_function(module, "f", [0])

    def test_pointer_arguments_via_allocate(self, parse):
        module = parse(
            """
            define void @write(i32* %p, i32 %v) {
            entry:
              store i32 %v, i32* %p
              ret void
            }
            """
        )
        interpreter = Interpreter(module)
        address = interpreter.allocate(1)
        interpreter.run(module.get_function("write"), [address, 99])
        assert interpreter.memory[address] == 99
