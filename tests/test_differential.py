"""Differential-interpreter harness: an executable oracle for the validator.

The validator's acceptance claim is behavioral: *if the original function
terminates without a runtime error, the optimized function computes the
same return value and leaves memory in the same state*.  The reference
interpreter gives that claim an executable cross-check (in the spirit of
rigorous tracer/validator design): run original and optimized on concrete
inputs and compare everything observable — the return value and the final
contents of the module's globals.

Two directions are exercised:

* **soundness** — every function (and whole module) the validator accepts
  must agree with the oracle on all generated inputs;
* **sensitivity** — every fault-injection pass from
  :mod:`repro.transforms.buggy`, applied to a handcrafted function where
  its breakage is observable, is caught by validation *or* flagged by the
  oracle (in practice: both).
"""

import pytest

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, small_test_corpus
from repro.errors import InterpreterError
from repro.ir import Interpreter, clone_function, parse_function, parse_module
from repro.transforms import ALL_BUGGY_PASSES, PAPER_PIPELINE, get_pass
from repro.validator import llvm_md, validate

#: Deterministic argument bases; each is truncated to the function's arity.
INPUT_BASES = (
    (0, 0, 0, 0, 0),
    (1, 2, 3, 4, 5),
    (7, -3, 12, 5, -8),
    (-1, -1, -1, -1, -1),
    (100, 50, 25, 12, 6),
    (2, 2, 2, 2, 2),
    (-17, 40, 0, 3, 9),
)

#: Marker for executions that hit a runtime error (trap/step budget/...).
TRAP = ("trap",)


def observe(module, function, args, max_steps=80_000):
    """Everything the validator promises to preserve, as one comparable value.

    Returns ``("ok", return_value, final-global-memory)`` or :data:`TRAP`
    when execution raised.  A fresh interpreter per run keeps global state
    from leaking between executions; globals are read back in name order
    so the tuple is comparable across two different module objects.
    """
    interpreter = Interpreter(module, max_steps=max_steps)
    try:
        result = interpreter.run(function, list(args))
    except InterpreterError:
        return TRAP
    final_globals = tuple(
        interpreter.memory.get(interpreter.global_addresses[name])
        for name in sorted(interpreter.global_addresses))
    return ("ok", result.return_value, final_globals)


def argument_sets(function):
    """The deterministic inputs a function is exercised on."""
    return [list(base[: len(function.args)]) for base in INPUT_BASES]


def oracle_flags_difference(before_module, before_fn, after_module, after_fn):
    """Does any input expose a *value* difference the validator must never
    have accepted?

    The oracle mirrors the paper's §2 guarantee exactly, which is a
    **partial-equivalence** claim: when both versions terminate normally,
    the return value and final memory agree.  Runs where either side
    raises or exhausts its step budget impose no constraint — the
    value-graph semantics observes neither traps in dead computations nor
    introduced non-termination (an eta node denotes "the value when the
    loop exits"), and neither does the paper's validator.
    """
    for args in argument_sets(before_fn):
        expected = observe(before_module, before_fn, args)
        if expected == TRAP:
            continue
        actual = observe(after_module, after_fn, args)
        if actual == TRAP:
            continue
        if actual != expected:
            return True
    return False


def assert_oracle_agreement(before_module, after_module, names, context):
    """Assert original/optimized partial-equivalence for ``names``.

    Inputs where either side traps or diverges are skipped — see
    :func:`oracle_flags_difference` for why that matches the validator's
    (and the paper's) guarantee.
    """
    for name in names:
        before_fn = before_module.get_function(name)
        after_fn = after_module.get_function(name)
        for args in argument_sets(before_fn):
            expected = observe(before_module, before_fn, args)
            if expected == TRAP:
                continue
            actual = observe(after_module, after_fn, args)
            if actual == TRAP:
                continue
            assert actual == expected, (
                f"{context}: @{name}{tuple(args)} diverged: "
                f"original {expected}, optimized {actual}")


CORPORA = [
    ("mini", lambda: small_test_corpus(functions=8, seed=11)),
    ("sqlite", lambda: build_corpus(BENCHMARKS_BY_NAME["sqlite"], 0.3)),
    ("mcf", lambda: build_corpus(BENCHMARKS_BY_NAME["mcf"], 0.5)),
]


class TestValidatorSoundness:
    """Accepted verdicts must survive the executable cross-check."""

    @pytest.mark.parametrize("corpus_name,builder", CORPORA,
                             ids=[name for name, _ in CORPORA])
    @pytest.mark.parametrize("strategy", ["whole", "stepwise"])
    def test_accepted_functions_agree_with_oracle(self, corpus_name, builder, strategy):
        module = builder()
        result_module, report = llvm_md(
            module, PAPER_PIPELINE, label=corpus_name, strategy=strategy)
        accepted = [r.name for r in report.records if r.transformed and r.validated]
        assert accepted, f"{corpus_name}: expected the validator to accept something"
        assert_oracle_agreement(module, result_module, accepted,
                                f"{corpus_name}/{strategy}")

    def test_whole_result_module_agrees_with_oracle(self):
        # Not only the accepted bodies: rejected functions roll back to the
        # original and partial keeps are validated prefixes, so the *entire*
        # result module must behave like the input module.
        module = small_test_corpus(functions=8, seed=11)
        result_module, _ = llvm_md(module, PAPER_PIPELINE, strategy="stepwise")
        names = [f.name for f in module.defined_functions()]
        assert_oracle_agreement(module, result_module, names, "whole-module")

    @pytest.mark.parametrize("bug_pass", ALL_BUGGY_PASSES)
    def test_buggy_pipelines_never_validate_observable_breakage(self, bug_pass):
        # The hostile sweep: hide each injector inside a correct pipeline.
        # Whatever the validator accepts (or keeps as a validated prefix)
        # must still agree with the oracle; whatever it rejects rolled back.
        # Either way the result module must behave like the input.
        module = small_test_corpus(functions=8, seed=11)
        result_module, report = llvm_md(
            module, ("adce", bug_pass, "gvn"), strategy="stepwise")
        names = [f.name for f in module.defined_functions()]
        assert_oracle_agreement(module, result_module, names, f"buggy/{bug_pass}")
        # Some injectors need a rare shape (e.g. two same-block stores) and
        # may stay idle on this corpus; per-injector firing coverage is
        # guaranteed by the handcrafted examples below.
        fired = any(r.transformed_by.get(bug_pass) for r in report.records)
        if not fired:
            pytest.skip(f"{bug_pass} found nothing to break in this corpus")


#: One handcrafted function per fault injector, designed so the injected
#: bug is *observable* (reachable and live on the tested inputs).
MISCOMPILATION_EXAMPLES = {
    "bug-flip-operator": """
        define i32 @flip(i32 %a, i32 %b) {
        entry:
          %s = add i32 %a, %b
          ret i32 %s
        }
        """,
    "bug-off-by-one": """
        define i32 @offby(i32 %a) {
        entry:
          %s = add i32 %a, 10
          ret i32 %s
        }
        """,
    "bug-swap-branch": """
        define i32 @swap(i32 %a, i32 %b) {
        entry:
          %c = icmp slt i32 %a, %b
          br i1 %c, label %then, label %else
        then:
          ret i32 1
        else:
          ret i32 0
        }
        """,
    "bug-drop-store": """
        define i32 @dropstore(i32 %a) {
        entry:
          %p = alloca i32
          store i32 %a, i32* %p
          %v = load i32, i32* %p
          ret i32 %v
        }
        """,
    "bug-bad-load-forwarding": """
        define i32 @badfwd(i32 %a, i32 %b) {
        entry:
          %p = alloca i32
          store i32 %a, i32* %p
          store i32 %b, i32* %p
          %v = load i32, i32* %p
          ret i32 %v
        }
        """,
    "bug-weaken-compare": """
        define i32 @weaken(i32 %a, i32 %b) {
        entry:
          %c = icmp slt i32 %a, %b
          %r = select i1 %c, i32 1, i32 0
          ret i32 %r
        }
        """,
}


class TestMiscompilationExamples:
    """Every seeded miscompilation is caught by validation or by the oracle."""

    def test_examples_cover_every_injector(self):
        assert set(MISCOMPILATION_EXAMPLES) == set(ALL_BUGGY_PASSES)

    @pytest.mark.parametrize("bug_pass", ALL_BUGGY_PASSES)
    def test_example_caught_by_validation_or_oracle(self, bug_pass):
        module = parse_module(MISCOMPILATION_EXAMPLES[bug_pass])
        function = module.defined_functions()[0]
        mutated = clone_function(function)
        assert get_pass(bug_pass)(mutated), f"{bug_pass} found nothing to break"

        result = validate(function, mutated)
        caught_by_validator = not result.is_success
        # The mutated clone lives outside any module; interpret it inside a
        # module clone so globals (none here) resolve uniformly.
        oracle_module = parse_module(MISCOMPILATION_EXAMPLES[bug_pass])
        oracle_module.functions[function.name] = mutated
        flagged_by_oracle = oracle_flags_difference(
            module, function, oracle_module, mutated)

        assert caught_by_validator or flagged_by_oracle, (
            f"{bug_pass}: neither the validator nor the differential oracle "
            f"noticed the miscompilation")
        # These examples are built to make the breakage observable, so the
        # static and the executable judges must both convict.
        assert caught_by_validator, f"{bug_pass}: validator accepted observable breakage"
        assert flagged_by_oracle, f"{bug_pass}: oracle saw no difference"


class TestOracleHarness:
    """The harness itself must be trustworthy (deterministic, trap-aware)."""

    def test_observation_is_deterministic(self):
        module = small_test_corpus(functions=4, seed=7)
        function = module.defined_functions()[0]
        args = argument_sets(function)[1]
        assert observe(module, function, args) == observe(module, function, args)

    def test_original_trap_imposes_no_constraint(self):
        # The original traps on every input (division by the constant 0),
        # so §2's conditional guarantee constrains nothing and even a
        # wildly different optimized version is not flagged.
        before = parse_module("""
            define i32 @div() {
            entry:
              %q = sdiv i32 10, 0
              ret i32 %q
            }
            """)
        after = parse_module("""
            define i32 @div() {
            entry:
              ret i32 7
            }
            """)
        before_fn = before.get_function("div")
        assert observe(before, before_fn, []) == TRAP
        assert not oracle_flags_difference(
            before, before_fn, after, after.get_function("div"))

    def test_oracle_detects_divergence(self):
        before = parse_module("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
        after = parse_module("define i32 @f(i32 %a) {\nentry:\n  ret i32 0\n}")
        assert oracle_flags_difference(
            before, before.get_function("f"), after, after.get_function("f"))
