"""The paper's worked examples, §3–§4, as executable tests.

Each test takes an example the paper uses to explain the validator and
checks that this implementation reaches the same conclusion.
"""

import pytest

from repro.ir import clone_function, parse_function, parse_module
from repro.transforms import PAPER_PIPELINE, optimize
from repro.validator import ValidatorConfig, validate


class TestSection31BasicBlocks:
    """§3.1: B1 (x3 = (a*(3+3)) + (a*(3+3))) vs B2 (y2 = (a*6) << 1)."""

    B1 = """
    define i32 @b1(i32 %a) {
    entry:
      %x1 = add i32 3, 3
      %x2 = mul i32 %a, %x1
      %x3 = add i32 %x2, %x2
      ret i32 %x3
    }
    """
    B2 = """
    define i32 @b2(i32 %a) {
    entry:
      %y1 = mul i32 %a, 6
      %y2 = shl i32 %y1, 1
      ret i32 %y2
    }
    """

    def test_b1_equals_b2(self):
        result = validate(parse_function(self.B1), parse_function(self.B2))
        assert result.is_success

    def test_requires_constant_folding_rules(self):
        config = ValidatorConfig(rule_groups=("phi", "boolean"))
        result = validate(parse_function(self.B1), parse_function(self.B2), config)
        assert not result.is_success

    def test_side_effects_ordering(self):
        """§3.1 'Side Effects': stores to distinct allocas, load reads the right one."""
        before = parse_function(
            """
            define i32 @f(i32 %x, i32 %y) {
            entry:
              %p1 = alloca i32
              %p2 = alloca i32
              store i32 %x, i32* %p1
              store i32 %y, i32* %p2
              %z = load i32, i32* %p1
              ret i32 %z
            }
            """
        )
        after = parse_function(
            """
            define i32 @f(i32 %x, i32 %y) {
            entry:
              %p2 = alloca i32
              store i32 %y, i32* %p2
              ret i32 %x
            }
            """
        )
        assert validate(before, after).is_success


class TestSection32ExtendedBasicBlocks:
    """§3.2: gated φ-nodes distinguish branch polarity."""

    def test_gates_distinguish_condition_polarity(self):
        before = parse_function(
            """
            define i32 @f(i32 %a, i32 %b, i32 %x0) {
            entry:
              %c = icmp slt i32 %a, %b
              br i1 %c, label %t, label %f
            t:
              %x1 = add i32 %x0, %x0
              br label %join
            f:
              %x2 = mul i32 %x0, %x0
              br label %join
            join:
              %x3 = phi i32 [ %x1, %t ], [ %x2, %f ]
              ret i32 %x3
            }
            """
        )
        # Same program but with the branch condition inverted (a >= b): the
        # φ now selects the *other* value; a validator without gates would
        # wrongly accept this.
        after = clone_function(before)
        after.entry.instructions[0].predicate = "sge"
        assert not validate(before, after).is_success

    def test_gvn_sccp_example_from_section4(self):
        """§4: the a==b / φ example normalizes to `return 1`."""
        before = parse_function(
            """
            define i32 @f(i1 %c) {
            entry:
              br i1 %c, label %then, label %else
            then:
              br label %join
            else:
              br label %join
            join:
              %a = phi i32 [ 1, %then ], [ 2, %else ]
              %b = phi i32 [ 1, %then ], [ 2, %else ]
              %d = phi i32 [ 1, %then ], [ 1, %else ]
              %cc = icmp eq i32 %a, %b
              br i1 %cc, label %t2, label %f2
            t2:
              br label %join2
            f2:
              br label %join2
            join2:
              %x = phi i32 [ %d, %t2 ], [ 0, %f2 ]
              ret i32 %x
            }
            """
        )
        after = parse_function("define i32 @g(i1 %c) {\nentry:\n  ret i32 1\n}")
        assert validate(before, after).is_success


class TestSection33Loops:
    """§3.3 / §4: loop-invariant code motion and loop deletion (rules 7–9)."""

    INVARIANT_LOOP = """
    define i32 @f(i32 %a, i32 %n) {
    entry:
      %x0 = add i32 %a, 3
      br label %loop
    loop:
      %i = phi i32 [ 0, %entry ], [ %inext, %body ]
      %x = phi i32 [ %x0, %entry ], [ %xnext, %body ]
      %b = icmp slt i32 %i, %n
      br i1 %b, label %body, label %exit
    body:
      %xnext = add i32 %a, 3
      %inext = add i32 %i, 1
      br label %loop
    exit:
      ret i32 %x
    }
    """

    def test_licm_plus_loop_deletion(self):
        """The paper's `x = a + c` loop reduces to `return a + 3`."""
        before = parse_function(self.INVARIANT_LOOP)
        after = parse_function(
            "define i32 @f(i32 %a, i32 %n) {\nentry:\n  %r = add i32 %a, 3\n  ret i32 %r\n}"
        )
        assert validate(before, after).is_success

    def test_requires_eta_rules(self):
        before = parse_function(self.INVARIANT_LOOP)
        after = parse_function(
            "define i32 @f(i32 %a, i32 %n) {\nentry:\n  %r = add i32 %a, 3\n  ret i32 %r\n}"
        )
        config = ValidatorConfig(rule_groups=("phi", "constfold", "boolean"))
        assert not validate(before, after, config).is_success

    def test_loop_body_change_rejected(self):
        before = parse_function(self.INVARIANT_LOOP)
        after = parse_function(self.INVARIANT_LOOP.replace("add i32 %a, 3", "add i32 %a, 4", 1))
        assert not validate(before, after).is_success


class TestSection42ExtendedExample:
    """§4.2: the full extended example reduces to `return m << 1`."""

    SOURCE = """
    define i32 @f(i32 %n, i32 %m) {
    entry:
      %t1 = alloca i32
      %t2 = alloca i32
      store i32 1, i32* %t1
      store i32 %m, i32* %t2
      br label %loop
    loop:
      %i = phi i32 [ 0, %entry ], [ %inext, %latch ]
      %t = phi i32* [ %t1, %entry ], [ %tnext, %latch ]
      %c = icmp slt i32 %i, %n
      br i1 %c, label %body, label %exit
    body:
      %mod = srem i32 %i, 3
      %cm = icmp ne i32 %mod, 0
      br i1 %cm, label %then, label %else
    then:
      br label %ifjoin
    else:
      br label %ifjoin
    ifjoin:
      %xn = phi i32 [ 1, %then ], [ 2, %else ]
      %yn = phi i32 [ 1, %then ], [ 2, %else ]
      %ceq = icmp eq i32 %xn, %yn
      br i1 %ceq, label %tt, label %tf
    tt:
      br label %latch
    tf:
      br label %latch
    latch:
      %tnext = phi i32* [ %t1, %tt ], [ %t2, %tf ]
      %inext = add i32 %i, 1
      br label %loop
    exit:
      store i32 42, i32* %t
      %v1 = load i32, i32* %t2
      %v2 = load i32, i32* %t2
      %r = add i32 %v1, %v2
      ret i32 %r
    }
    """

    TARGET = """
    define i32 @target(i32 %n, i32 %m) {
    entry:
      %r = shl i32 %m, 1
      ret i32 %r
    }
    """

    def test_normalizes_to_m_shifted(self):
        assert validate(parse_function(self.SOURCE), parse_function(self.TARGET)).is_success

    def test_wrong_target_rejected(self):
        wrong = parse_function(self.TARGET.replace("%m, 1", "%n, 1"))
        assert not validate(parse_function(self.SOURCE), wrong).is_success

    def test_paper_pipeline_output_validates(self):
        before = parse_function(self.SOURCE)
        after = optimize(clone_function(before), ["instcombine", *PAPER_PIPELINE])
        assert validate(before, after).is_success

    def test_needs_alias_rules(self):
        config = ValidatorConfig(rule_groups=("phi", "constfold", "boolean", "eta"))
        result = validate(parse_function(self.SOURCE), parse_function(self.TARGET), config)
        assert not result.is_success


class TestSection2Architecture:
    """§2: the llvm-md wrapper keeps rejected functions unchanged."""

    def test_rejected_functions_keep_original_body(self):
        module = parse_module(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %x = add i32 %a, %b
              ret i32 %x
            }
            """
        )
        from repro.validator import llvm_md

        optimized, report = llvm_md(module, ["bug-flip-operator"], label="buggy")
        record = report.records[0]
        assert record.transformed
        assert not record.validated
        # The output function still computes a+b (the original was restored).
        from repro.ir import run_function

        assert run_function(optimized, "f", [20, 22]).return_value == 42
