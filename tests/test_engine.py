"""Tests for the incremental (worklist) normalization engine and batch validation.

Covers the four layers of the engine refactor:

* graph layer — reverse use-edges, merge notifications, incremental
  hash-consing;
* rule layer — the ``@rule`` decorator registry and the kind-dispatch index;
* normalizer layer — worklist engine verdict parity with the full-scan
  baseline, at strictly less rule-application work, plus the stats counters;
* validator layer — ``validate_module_batch``, the content-addressed
  validation cache and the report plumbing.
"""

import pytest

from repro.bench import generate_module
from repro.bench.corpus import small_test_corpus
from repro.ir import clone_function, parse_function
from repro.transforms import PAPER_PIPELINE, get_pass
from repro.validator import (
    ValidationCache,
    ValidatorConfig,
    function_fingerprint,
    llvm_md,
    validate,
    validate_module_batch,
)
from repro.vgraph import ValueGraph, build_rule_index, Normalizer
from repro.vgraph.rules import RULE_GROUPS, RULE_REGISTRY


class TestGraphParents:
    def test_make_records_parents(self):
        graph = ValueGraph()
        a, b = graph.const(1), graph.const(2)
        node = graph.make("binop", "add", [a, b])
        assert node in graph.parents(a)
        assert node in graph.parents(b)

    def test_set_args_records_parents(self):
        graph = ValueGraph()
        mu = graph.make_mu()
        zero = graph.const(0)
        inc = graph.make("binop", "add", [mu, graph.const(1)])
        graph.set_args(mu, [zero, inc])
        assert mu in graph.parents(zero)
        assert mu in graph.parents(inc)

    def test_redirect_migrates_parents_and_notifies(self):
        graph = ValueGraph()
        a, b = graph.const(1), graph.const(2)
        node = graph.make("binop", "add", [a, b])
        user = graph.make("binop", "mul", [node, a])
        events = []
        graph.add_listener(lambda old, new, stale: events.append((old, new, frozenset(stale))))
        replacement = graph.const(3)
        assert graph.redirect(node, replacement)
        assert events and events[0][0] == node and events[0][1] == graph.resolve(replacement)
        # The stale parents are exactly the nodes whose keys went stale.
        assert user in events[0][2]
        # Parent edges follow the merge: `user` is now a parent of the target.
        assert user in graph.parents(replacement)
        graph.remove_listener(graph._listeners[0])

    def test_incremental_sharing_matches_full_scan(self):
        def build():
            graph = ValueGraph()
            p = graph.make("param", 0)
            left = graph.make("binop", "add", [p, graph.const(1)])
            right = graph.make("binop", "add", [p, graph.const(2)])
            top_left = graph.make("binop", "mul", [left, left])
            top_right = graph.make("binop", "mul", [right, right])
            return graph, left, right, top_left, top_right

        graph, left, right, top_left, top_right = build()
        # Redirecting const(2) onto const(1) makes `right` a duplicate of
        # `left`, which in turn makes `top_right` a duplicate of `top_left`.
        graph.redirect(graph.const(2), graph.const(1))
        merges = graph.maximize_sharing_incremental(graph.parents(graph.const(1)))
        assert merges >= 2
        assert graph.same(left, right)
        assert graph.same(top_left, top_right)

        full_graph, f_left, f_right, f_top_left, f_top_right = build()
        full_graph.redirect(full_graph.const(2), full_graph.const(1))
        full_graph.maximize_sharing()
        assert full_graph.same(f_left, f_right) and full_graph.same(f_top_left, f_top_right)


class TestRuleIndex:
    def test_every_rule_is_registered_with_kinds(self):
        assert len(RULE_REGISTRY) == sum(len(rules) for rules in RULE_GROUPS.values())
        for registered in RULE_REGISTRY:
            assert registered.kinds, registered.__name__
            assert registered.group in RULE_GROUPS

    def test_index_covers_exactly_the_declared_kinds(self):
        index = build_rule_index(tuple(RULE_GROUPS))
        declared = {kind for fn in RULE_REGISTRY for kind in fn.kinds}
        assert set(index) == declared
        # Rules keep their rules_for order within each kind bucket.
        from repro.vgraph.rules import rules_for

        flat = rules_for(tuple(RULE_GROUPS))
        for kind, rules in index.items():
            positions = [flat.index(rule) for rule in rules]
            assert positions == sorted(positions), kind

    def test_index_respects_group_selection(self):
        index = build_rule_index(("phi",))
        assert set(index) == {"phi"}
        assert build_rule_index(()) == {}
        with pytest.raises(KeyError):
            build_rule_index(("nonsense",))


class TestEngineParity:
    """The worklist engine must reproduce the full-scan verdicts exactly."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return small_test_corpus(functions=6, seed=23)

    def test_single_pass_verdicts_agree(self, corpus):
        for pass_name in PAPER_PIPELINE:
            for fn in corpus.defined_functions():
                optimized = clone_function(fn)
                if not get_pass(pass_name)(optimized):
                    continue
                fullscan = validate(fn, optimized, ValidatorConfig(engine="fullscan"))
                worklist = validate(fn, optimized, ValidatorConfig(engine="worklist"))
                assert fullscan.is_success == worklist.is_success, (pass_name, fn.name)

    def test_ablation_verdicts_agree(self, corpus):
        for groups in ((), ("phi",), ("phi", "constfold", "boolean")):
            for fn in corpus.defined_functions():
                optimized = clone_function(fn)
                if not get_pass("gvn")(optimized):
                    continue
                fullscan = validate(fn, optimized,
                                    ValidatorConfig(rule_groups=groups, engine="fullscan"))
                worklist = validate(fn, optimized,
                                    ValidatorConfig(rule_groups=groups, engine="worklist"))
                assert fullscan.is_success == worklist.is_success, (groups, fn.name)

    def test_worklist_does_strictly_less_rule_work(self, corpus):
        fullscan_total = worklist_total = 0
        for fn in corpus.defined_functions():
            optimized = clone_function(fn)
            if not any(get_pass(name)(optimized) for name in ("gvn",)):
                continue
            fullscan = validate(fn, optimized, ValidatorConfig(engine="fullscan"))
            worklist = validate(fn, optimized, ValidatorConfig(engine="worklist"))
            fullscan_total += fullscan.stats.get("rule_invocations", 0)
            worklist_total += worklist.stats.get("rule_invocations", 0)
        assert fullscan_total > 0
        assert worklist_total < fullscan_total

    def test_worklist_stats_surfaced(self, loop_source):
        fn = parse_function(loop_source)
        optimized = clone_function(fn)
        assert get_pass("licm")(optimized)
        result = validate(fn, optimized, ValidatorConfig(engine="worklist"))
        assert result.is_success
        for key in ("worklist_pushes", "index_hits", "rule_invocations"):
            assert key in result.stats
        assert result.stats["worklist_pushes"] > 0
        assert result.stats["index_hits"] > 0

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            ValidatorConfig(engine="bogus")
        with pytest.raises(ValueError):
            Normalizer(ValueGraph(), engine="bogus")


class TestNormalizeStatsCrediting:
    """Regression: `normalize()` must credit cycle/partition merges."""

    def _two_equal_cycles(self):
        graph = ValueGraph()
        zero, one = graph.const(0), graph.const(1)
        mu1 = graph.make_mu()
        graph.set_args(mu1, [zero, graph.make("binop", "add", [mu1, one])])
        mu2 = graph.make_mu()
        graph.set_args(mu2, [zero, graph.make("binop", "add", [mu2, one])])
        return graph, mu1, mu2

    @pytest.mark.parametrize("engine", ["fullscan", "worklist"])
    def test_cycle_merges_credited(self, engine):
        graph, mu1, mu2 = self._two_equal_cycles()
        stats = Normalizer(graph, matcher="simple", engine=engine).normalize([mu1, mu2])
        assert graph.same(mu1, mu2)
        assert stats.cycle_merges > 0

    @pytest.mark.parametrize("engine", ["fullscan", "worklist"])
    def test_partition_merges_credited(self, engine):
        graph, mu1, mu2 = self._two_equal_cycles()
        stats = Normalizer(graph, matcher="partition", engine=engine).normalize([mu1, mu2])
        assert graph.same(mu1, mu2)
        assert stats.partition_merges > 0


class TestPruneUnobservableStores:
    """Edge cases of the dead-local-store pruning (graph level)."""

    def _normalize(self, graph, roots):
        # Store pruning runs in the goal-directed loop (like the seed's
        # normalize_until_equal); an unmatchable goal pair drives the loop
        # to its rewrite fixpoint over the given roots.
        normalizer = Normalizer(graph, rule_groups=("loadstore",))
        normalizer.normalize_until_equal([(root, None) for root in roots])

    def test_store_to_dead_alloca_pruned(self):
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        mem0 = graph.make("mem0")
        store = graph.make("store", None, [graph.make("param", 0), p, mem0])
        self._normalize(graph, [store])
        assert graph.same(store, mem0)

    def test_escape_via_stored_pointer_keeps_store(self):
        # Storing the alloca's *address* somewhere publishes it: a later
        # load through other memory could observe writes to it.
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        q = graph.make("param", 0)
        mem0 = graph.make("mem0")
        publish = graph.make("store", None, [p, q, mem0])  # *q = p (p escapes)
        store = graph.make("store", None, [graph.const(42), p, publish])
        self._normalize(graph, [store])
        assert not graph.same(store, publish)

    def test_gep_chained_base_pruned(self):
        # A store through a GEP chain rooted at a dead alloca is still dead.
        graph = ValueGraph()
        arr = graph.make("alloca", "arr")
        inner = graph.make("gep", None, [arr, graph.const(1)])
        outer = graph.make("gep", None, [inner, graph.const(2)])
        mem0 = graph.make("mem0")
        store = graph.make("store", None, [graph.const(7), outer, mem0])
        self._normalize(graph, [store])
        assert graph.same(store, mem0)

    def test_gep_load_from_same_allocation_keeps_store(self):
        # The load reads a *different offset* of the same allocation, so the
        # base is observable and the store must survive.
        graph = ValueGraph()
        arr = graph.make("alloca", "arr")
        mem0 = graph.make("mem0")
        store_ptr = graph.make("gep", None, [arr, graph.const(1)])
        store = graph.make("store", None, [graph.const(7), store_ptr, mem0])
        load_ptr = graph.make("gep", None, [arr, graph.make("param", 0)])
        load = graph.make("load", None, [load_ptr, store])
        self._normalize(graph, [load])
        memory = graph.node(graph.resolve(load)).args[1]
        assert graph.same(memory, store)
        assert not graph.same(store, mem0)

    def test_aliasing_load_keeps_store(self):
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        mem0 = graph.make("mem0")
        store = graph.make("store", None, [graph.make("param", 0), p, mem0])
        load = graph.make("load", None, [p, store])
        self._normalize(graph, [load])
        # The load folds to the stored value (must-alias), but the store in
        # the memory chain is only removable because of that fold — the
        # *pruning* itself must not have fired while the load was live.
        assert graph.same(load, graph.make("param", 0))

    def test_escape_via_call_keeps_store(self):
        graph = ValueGraph()
        p = graph.make("alloca", "p")
        mem0 = graph.make("mem0")
        call = graph.make("call", ("ext", True, True), [p, mem0])
        callmem = graph.make("callmem", None, [call])
        store = graph.make("store", None, [graph.const(1), p, callmem])
        self._normalize(graph, [store])
        assert not graph.same(store, callmem)


class TestBatchValidation:
    def _modules(self):
        # seed 7 twice: the second module is a content-identical clone.
        return [generate_module(functions=3, seed=7),
                generate_module(functions=3, seed=7),
                generate_module(functions=3, seed=13)]

    def test_batch_matches_llvm_md_verdicts(self):
        modules = self._modules()
        batch = validate_module_batch(modules)
        for module, (_, batch_report) in zip(modules, batch):
            _, reference = llvm_md(module)
            assert {r.name: r.validated for r in reference.records} == \
                   {r.name: r.validated for r in batch_report.records}

    def test_batch_cache_hits_reported(self):
        modules = self._modules()
        cache = ValidationCache()
        batch = validate_module_batch(modules, cache=cache)
        duplicate_report = batch[1][1]
        # Every transformed function of the duplicate module is a cache hit.
        assert duplicate_report.cache_hits == duplicate_report.transformed_functions
        assert duplicate_report.cache_hits > 0
        assert duplicate_report.cache_stats is not None
        assert duplicate_report.cache_stats["hits"] >= duplicate_report.cache_hits
        totals = duplicate_report.engine_totals()
        assert totals["cache_hits"] == duplicate_report.cache_hits
        assert cache.hits > 0 and cache.misses > 0

    def test_batch_reuses_cache_across_calls(self):
        cache = ValidationCache()
        module = generate_module(functions=3, seed=7)
        validate_module_batch([module], cache=cache)
        misses_before = cache.misses
        (_, report), = validate_module_batch([generate_module(functions=3, seed=7)], cache=cache)
        assert cache.misses == misses_before  # answered entirely from cache
        assert report.cache_hits == report.transformed_functions

    def test_batch_concurrency_smoke(self):
        modules = self._modules()
        serial = validate_module_batch(modules)
        parallel = validate_module_batch(modules, config=ValidatorConfig(concurrency=2))
        assert [{r.name: r.validated for r in rep.records} for _, rep in serial] == \
               [{r.name: r.validated for r in rep.records} for _, rep in parallel]

    def test_fingerprint_stable_across_clones(self):
        module = generate_module(functions=1, seed=3)
        fn = module.defined_functions()[0]
        assert function_fingerprint(fn) == function_fingerprint(clone_function(fn))

    def test_batch_result_modules_are_isolated(self):
        module = generate_module(functions=3, seed=7)
        (result_module, _), = validate_module_batch([module])
        assert set(result_module.functions) == set(module.functions)
        for name, function in module.functions.items():
            assert result_module.functions[name] is not function
            # The input module's functions were not re-parented.
            assert function.parent is module


class TestDriverCloningUniform:
    """llvm_md must never insert the input module's own Function objects."""

    def test_declarations_and_unselected_functions_cloned(self):
        module = generate_module(functions=2, seed=5)
        declared = [f.name for f in module.functions.values() if f.is_declaration]
        defined = [f.name for f in module.functions.values() if not f.is_declaration]
        assert declared, "generator should declare external functions"
        result, _ = llvm_md(module, PAPER_PIPELINE, function_names=[defined[0]])
        for name, function in module.functions.items():
            assert result.functions[name] is not function, name
            assert function.parent is module, name
