"""Tests for mem2reg, GVN, DSE, LICM, loop deletion and loop unswitching."""

from repro.analysis import LoopInfo
from repro.ir import (
    Interpreter,
    clone_function,
    clone_module,
    parse_function,
    parse_module,
    run_function,
    verify_function,
)
from repro.transforms import (
    PAPER_PIPELINE,
    PassManager,
    dse,
    get_pass,
    gvn,
    licm,
    loop_deletion,
    loop_unswitch,
    mem2reg,
)

PROMOTABLE = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = alloca i32
  store i32 %a, i32* %x
  %c = icmp slt i32 %a, %b
  br i1 %c, label %then, label %join
then:
  store i32 %b, i32* %x
  br label %join
join:
  %v = load i32, i32* %x
  ret i32 %v
}
"""

LOOP_WITH_ALLOCA = """
define i32 @f(i32 %n) {
entry:
  %acc = alloca i32
  %i = alloca i32
  store i32 0, i32* %acc
  store i32 0, i32* %i
  br label %header
header:
  %iv = load i32, i32* %i
  %c = icmp slt i32 %iv, %n
  br i1 %c, label %body, label %exit
body:
  %old = load i32, i32* %acc
  %new = add i32 %old, 3
  store i32 %new, i32* %acc
  %inext = add i32 %iv, 1
  store i32 %inext, i32* %i
  br label %header
exit:
  %r = load i32, i32* %acc
  ret i32 %r
}
"""


class TestMem2Reg:
    def test_promotes_and_places_phi(self):
        fn = parse_function(PROMOTABLE)
        assert mem2reg(fn)
        verify_function(fn)
        assert not any(i.opcode in ("alloca", "load", "store") for i in fn.instructions())
        assert fn.block("join").phis()

    def test_loop_promotion_preserves_semantics(self):
        module = parse_module(LOOP_WITH_ALLOCA)
        expected = run_function(module, "f", [5]).return_value
        fn = module.get_function("f")
        mem2reg(fn)
        verify_function(fn)
        assert run_function(module, "f", [5]).return_value == expected == 15
        assert fn.block("header").phis()

    def test_non_promotable_alloca_kept(self):
        fn = parse_function(
            """
            define i32 @f(i32 %i) {
            entry:
              %arr = alloca i32, i32 8
              %p = getelementptr i32, i32* %arr, i32 %i
              store i32 1, i32* %p
              %v = load i32, i32* %p
              ret i32 %v
            }
            """
        )
        mem2reg(fn)
        assert any(i.opcode == "alloca" for i in fn.instructions())

    def test_idempotent(self):
        fn = parse_function(PROMOTABLE)
        mem2reg(fn)
        assert not mem2reg(fn)


class TestGVN:
    def test_removes_redundant_expression(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %x = add i32 %a, %b
              %y = add i32 %a, %b
              %r = mul i32 %x, %y
              ret i32 %r
            }
            """
        )
        assert gvn(fn)
        adds = [i for i in fn.instructions() if i.opcode == "add"]
        assert len(adds) == 1

    def test_commutative_expressions_merge(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %x = add i32 %a, %b
              %y = add i32 %b, %a
              %r = sub i32 %x, %y
              ret i32 %r
            }
            """
        )
        gvn(fn)
        assert len([i for i in fn.instructions() if i.opcode == "add"]) == 1

    def test_dominating_expression_reused_across_blocks(self, diamond_source):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %b) {
            entry:
              %x = add i32 %a, %b
              %c = icmp slt i32 %a, %b
              br i1 %c, label %then, label %join
            then:
              %y = add i32 %a, %b
              br label %join
            join:
              %r = phi i32 [ %y, %then ], [ %x, %entry ]
              ret i32 %r
            }
            """
        )
        gvn(fn)
        assert len([i for i in fn.instructions() if i.opcode == "add"]) == 1

    def test_sibling_blocks_do_not_share(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i1 %c) {
            entry:
              br i1 %c, label %left, label %right
            left:
              %x = add i32 %a, 1
              br label %join
            right:
              %y = add i32 %a, 1
              br label %join
            join:
              %r = phi i32 [ %x, %left ], [ %y, %right ]
              ret i32 %r
            }
            """
        )
        gvn(fn)
        verify_function(fn)
        # Neither branch dominates the other: both adds must survive.
        assert len([i for i in fn.instructions() if i.opcode == "add"]) == 2

    def test_store_to_load_forwarding(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a) {
            entry:
              %p = alloca i32
              %q = alloca i32
              store i32 %a, i32* %p
              store i32 7, i32* %q
              %v = load i32, i32* %p
              ret i32 %v
            }
            """
        )
        gvn(fn)
        assert not any(i.opcode == "load" for i in fn.instructions())
        assert fn.entry.terminator.value is fn.args[0]

    def test_clobbered_load_not_forwarded(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32* %unknown) {
            entry:
              %p = alloca i32
              store i32 %a, i32* %p
              store i32 9, i32* %unknown
              %v = load i32, i32* %p
              ret i32 %v
            }
            """
        )
        gvn(fn)
        # %unknown may alias... actually allocas never alias arguments, so
        # this forwarding IS legal and should happen.
        assert fn.entry.terminator.value is fn.args[0]

    def test_redundant_load_elimination(self):
        fn = parse_function(
            """
            define i32 @f(i32* %p) {
            entry:
              %x = load i32, i32* %p
              %y = load i32, i32* %p
              %r = add i32 %x, %y
              ret i32 %r
            }
            """
        )
        gvn(fn)
        assert len([i for i in fn.instructions() if i.opcode == "load"]) == 1


class TestDSE:
    def test_removes_overwritten_store(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32* %p) {
            entry:
              store i32 1, i32* %p
              store i32 %a, i32* %p
              %v = load i32, i32* %p
              ret i32 %v
            }
            """
        )
        assert dse(fn)
        stores = [i for i in fn.instructions() if i.opcode == "store"]
        assert len(stores) == 1
        assert stores[0].value is fn.args[0]

    def test_keeps_store_with_intervening_load(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32* %p) {
            entry:
              store i32 1, i32* %p
              %v = load i32, i32* %p
              store i32 %a, i32* %p
              ret i32 %v
            }
            """
        )
        dse(fn)
        assert len([i for i in fn.instructions() if i.opcode == "store"]) == 2

    def test_removes_store_to_never_read_alloca(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a) {
            entry:
              %p = alloca i32
              store i32 %a, i32* %p
              ret i32 %a
            }
            """
        )
        assert dse(fn)
        assert not any(i.opcode == "store" for i in fn.instructions())


class TestLICM:
    def test_hoists_invariant_computation(self, loop_source):
        fn = parse_function(loop_source)
        assert licm(fn)
        body_opcodes = [i.opcode for i in fn.block("body").instructions]
        assert "mul" not in body_opcodes
        entry_opcodes = [i.opcode for i in fn.block("entry").instructions]
        assert "mul" in entry_opcodes

    def test_semantics_preserved(self, loop_source):
        module = parse_module(loop_source)
        expected = run_function(module, "loopy", [3, 5]).return_value
        licm(module.get_function("loopy"))
        verify_function(module.get_function("loopy"))
        assert run_function(module, "loopy", [3, 5]).return_value == expected

    def test_does_not_hoist_variant_computation(self, loop_source):
        fn = parse_function(loop_source)
        licm(fn)
        # The accumulator add uses the loop-carried phi: must stay inside.
        assert any(i.opcode == "add" for i in fn.block("body").instructions)

    def test_hoists_load_with_no_aliasing_store(self):
        fn = parse_function(
            """
            define i32 @f(i32* %p, i32 %n) {
            entry:
              %q = alloca i32
              br label %header
            header:
              %i = phi i32 [ 0, %entry ], [ %inext, %body ]
              %c = icmp slt i32 %i, %n
              br i1 %c, label %body, label %exit
            body:
              %v = load i32, i32* %p
              store i32 %v, i32* %q
              %inext = add i32 %i, 1
              br label %header
            exit:
              ret i32 0
            }
            """
        )
        licm(fn)
        assert any(i.opcode == "load" for i in fn.entry.instructions)

    def test_hoists_readonly_call(self):
        fn_module = parse_module(
            """
            declare i32 @strlen(i32 %p) readonly
            define i32 @f(i32 %p, i32 %n) {
            entry:
              br label %header
            header:
              %i = phi i32 [ 0, %entry ], [ %inext, %body ]
              %acc = phi i32 [ 0, %entry ], [ %accnext, %body ]
              %c = icmp slt i32 %i, %n
              br i1 %c, label %body, label %exit
            body:
              %len = call i32 @strlen(i32 %p)
              %accnext = add i32 %acc, %len
              %inext = add i32 %i, 1
              br label %header
            exit:
              ret i32 %acc
            }
            """
        )
        fn = fn_module.get_function("f")
        licm(fn)
        assert any(i.opcode == "call" for i in fn.entry.instructions)


class TestLoopDeletion:
    def test_deletes_dead_loop(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %n) {
            entry:
              br label %header
            header:
              %i = phi i32 [ 0, %entry ], [ %inext, %body ]
              %c = icmp slt i32 %i, %n
              br i1 %c, label %body, label %exit
            body:
              %junk = mul i32 %i, 3
              %inext = add i32 %i, 1
              br label %header
            exit:
              ret i32 %a
            }
            """
        )
        assert loop_deletion(fn)
        verify_function(fn)
        assert len(LoopInfo.compute(fn)) == 0

    def test_deletes_invariant_loop_and_rewrites_uses(self):
        fn = parse_function(
            """
            define i32 @f(i32 %a, i32 %n) {
            entry:
              %x0 = add i32 %a, 3
              br label %header
            header:
              %i = phi i32 [ 0, %entry ], [ %inext, %body ]
              %x = phi i32 [ %x0, %entry ], [ %x0, %body ]
              %c = icmp slt i32 %i, %n
              br i1 %c, label %body, label %exit
            body:
              %inext = add i32 %i, 1
              br label %header
            exit:
              ret i32 %x
            }
            """
        )
        assert loop_deletion(fn)
        verify_function(fn)
        ret = [b.terminator for b in fn.blocks if b.terminator.opcode == "ret"][0]
        assert ret.value.name == "x0"

    def test_keeps_loop_with_stores(self, parse):
        fn = parse_function(
            """
            define i32 @f(i32* %p, i32 %n) {
            entry:
              br label %header
            header:
              %i = phi i32 [ 0, %entry ], [ %inext, %body ]
              %c = icmp slt i32 %i, %n
              br i1 %c, label %body, label %exit
            body:
              store i32 %i, i32* %p
              %inext = add i32 %i, 1
              br label %header
            exit:
              ret i32 0
            }
            """
        )
        assert not loop_deletion(fn)
        assert len(LoopInfo.compute(fn)) == 1

    def test_keeps_loop_with_escaping_varying_value(self, loop_source):
        fn = parse_function(loop_source)
        assert not loop_deletion(fn)


class TestLoopUnswitch:
    UNSWITCHABLE = """
    define i32 @f(i32* %p, i32 %n, i1 %flag) {
    entry:
      br label %header
    header:
      %i = phi i32 [ 0, %entry ], [ %inext, %latch ]
      %c = icmp slt i32 %i, %n
      br i1 %c, label %body, label %exit
    body:
      br i1 %flag, label %then, label %else
    then:
      store i32 1, i32* %p
      br label %latch
    else:
      store i32 2, i32* %p
      br label %latch
    latch:
      %inext = add i32 %i, 1
      br label %header
    exit:
      ret i32 0
    }
    """

    def test_unswitches_invariant_branch(self):
        fn = parse_function(self.UNSWITCHABLE)
        assert loop_unswitch(fn)
        verify_function(fn)
        # Two loops now exist (the original and the clone).
        assert len(LoopInfo.compute(fn)) == 2

    def test_unswitch_preserves_semantics(self):
        module = parse_module(self.UNSWITCHABLE)
        fn = module.get_function("f")
        interpreter = Interpreter(module)
        address = interpreter.allocate(1)
        interpreter.run(fn, [address, 3, 1])
        expected = interpreter.memory[address]

        loop_unswitch(fn)
        verify_function(fn)
        interpreter2 = Interpreter(module)
        address2 = interpreter2.allocate(1)
        interpreter2.run(fn, [address2, 3, 1])
        assert interpreter2.memory[address2] == expected == 1

    def test_no_unswitch_without_invariant_branch(self, loop_source):
        fn = parse_function(loop_source)
        assert not loop_unswitch(fn)


class TestPipelineDifferential:
    """End-to-end: the whole pipeline must preserve interpreter behaviour."""

    def test_pipeline_differential_on_corpus(self, mini_corpus):
        optimized = clone_module(mini_corpus)
        PassManager(PAPER_PIPELINE).run_on_module(optimized)
        for fn in optimized.defined_functions():
            verify_function(fn)
        for fn in mini_corpus.defined_functions():
            for base in [(1, 2, 3, 4, 5), (9, -2, 0, 7, 3)]:
                args = list(base[: len(fn.args)])
                before = Interpreter(mini_corpus).run(fn, args).return_value
                after = Interpreter(optimized).run(optimized.get_function(fn.name), args).return_value
                assert before == after

    def test_buggy_passes_change_behaviour_or_are_dead(self, mini_corpus):
        """Fault injectors either change observable behaviour or hit dead code."""
        from repro.transforms import ALL_BUGGY_PASSES

        injected = 0
        for name in ALL_BUGGY_PASSES:
            for fn in mini_corpus.defined_functions():
                mutated = clone_function(fn)
                if get_pass(name)(mutated):
                    injected += 1
                    verify_function(mutated)
        assert injected > 0
