"""Direct unit tests for the graph-level alias queries (§4's simple rules).

``graph_alias`` was previously exercised only indirectly through the
load/store rewrite rules; these tests pin down its verdicts over every
base kind (alloca, global, param) and the constant-offset GEP peeling.
"""

import pytest

from repro.vgraph import ValueGraph
from repro.vgraph.galias import (
    GraphAliasResult,
    graph_alias,
    graph_must_alias,
    graph_no_alias,
)


@pytest.fixture
def graph():
    return ValueGraph()


def gep(graph, base, *offsets):
    """A (possibly nested) GEP node over constant integer offsets."""
    node = base
    for offset in offsets:
        node = graph.make("gep", None, [node, graph.const(offset)])
    return node


def gep_dynamic(graph, base, index_node):
    """A single GEP whose index is an arbitrary (non-constant) node."""
    return graph.make("gep", None, [base, index_node])


class TestBaseKinds:
    def test_same_node_must_alias(self, graph):
        p = graph.make("alloca", "site0")
        assert graph_alias(graph, p, p) is GraphAliasResult.MUST_ALIAS
        assert graph_must_alias(graph, p, p)

    def test_distinct_allocas_no_alias(self, graph):
        a = graph.make("alloca", "site0")
        b = graph.make("alloca", "site1")
        assert graph_alias(graph, a, b) is GraphAliasResult.NO_ALIAS
        assert graph_no_alias(graph, a, b)

    def test_alloca_vs_global_no_alias(self, graph):
        a = graph.make("alloca", "site0")
        g = graph.make("global", "g")
        assert graph_alias(graph, a, g) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, g, a) is GraphAliasResult.NO_ALIAS

    def test_alloca_vs_param_no_alias(self, graph):
        # Fresh stack memory cannot have escaped into a caller's pointer.
        a = graph.make("alloca", "site0")
        p = graph.make("param", 0)
        assert graph_alias(graph, a, p) is GraphAliasResult.NO_ALIAS
        assert graph_alias(graph, p, a) is GraphAliasResult.NO_ALIAS

    def test_distinct_globals_no_alias(self, graph):
        g = graph.make("global", "g")
        h = graph.make("global", "h")
        assert graph_alias(graph, g, h) is GraphAliasResult.NO_ALIAS

    def test_global_vs_param_may_alias(self, graph):
        # A caller can pass the address of a global.
        g = graph.make("global", "g")
        p = graph.make("param", 0)
        assert graph_alias(graph, g, p) is GraphAliasResult.MAY_ALIAS

    def test_distinct_params_may_alias(self, graph):
        p = graph.make("param", 0)
        q = graph.make("param", 1)
        assert graph_alias(graph, p, q) is GraphAliasResult.MAY_ALIAS
        assert not graph_no_alias(graph, p, q)
        assert not graph_must_alias(graph, p, q)


class TestGepPeeling:
    def test_same_base_different_constant_offsets(self, graph):
        base = graph.make("alloca", "buf")
        assert graph_alias(graph, gep(graph, base, 1), gep(graph, base, 2)) \
            is GraphAliasResult.NO_ALIAS

    def test_same_base_equal_offsets_through_nesting(self, graph):
        # gep(gep(base, 1), 2) and gep(base, 3) peel to the same total
        # offset even though they are structurally different nodes.
        base = graph.make("alloca", "buf")
        nested = gep(graph, base, 1, 2)
        flat = gep(graph, base, 3)
        assert nested != flat
        assert graph_alias(graph, nested, flat) is GraphAliasResult.MUST_ALIAS

    def test_same_base_unequal_nested_offsets(self, graph):
        base = graph.make("alloca", "buf")
        assert graph_alias(graph, gep(graph, base, 1, 2), gep(graph, base, 4)) \
            is GraphAliasResult.NO_ALIAS

    def test_same_base_unknown_offset_may_alias(self, graph):
        base = graph.make("alloca", "buf")
        dynamic = gep_dynamic(graph, base, graph.make("param", 0))
        assert graph_alias(graph, dynamic, gep(graph, base, 2)) \
            is GraphAliasResult.MAY_ALIAS

    def test_two_unknown_offsets_may_alias(self, graph):
        base = graph.make("alloca", "buf")
        one = gep_dynamic(graph, base, graph.make("param", 0))
        two = gep_dynamic(graph, base, graph.make("param", 1))
        assert graph_alias(graph, one, two) is GraphAliasResult.MAY_ALIAS

    def test_identical_gep_hash_conses_to_must_alias(self, graph):
        base = graph.make("alloca", "buf")
        assert gep(graph, base, 2) == gep(graph, base, 2)
        assert graph_must_alias(graph, gep(graph, base, 2), gep(graph, base, 2))

    def test_different_identified_bases_no_alias(self, graph):
        a = graph.make("alloca", "x")
        g = graph.make("global", "g")
        assert graph_alias(graph, gep(graph, a, 1), gep(graph, g, 1)) \
            is GraphAliasResult.NO_ALIAS

    def test_different_param_bases_may_alias(self, graph):
        p = graph.make("param", 0)
        q = graph.make("param", 1)
        assert graph_alias(graph, gep(graph, p, 1), gep(graph, q, 1)) \
            is GraphAliasResult.MAY_ALIAS

    def test_multi_index_gep_is_opaque(self, graph):
        # Multi-index GEPs are not peeled to a scalar offset: the query
        # must stay conservative on the same base.
        base = graph.make("alloca", "matrix")
        row0 = graph.make("gep", None, [base, graph.const(0), graph.const(1)])
        row1 = graph.make("gep", None, [base, graph.const(0), graph.const(2)])
        assert graph_alias(graph, row0, row1) is GraphAliasResult.MAY_ALIAS

    def test_gep_offset_relative_to_distinct_allocas(self, graph):
        a = graph.make("alloca", "x")
        b = graph.make("alloca", "y")
        assert graph_alias(graph, gep(graph, a, 3), gep(graph, b, 3)) \
            is GraphAliasResult.NO_ALIAS
