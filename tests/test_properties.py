"""Property-based tests (hypothesis) for core invariants.

These check the load-bearing correspondences of the system:

* constant folding agrees with the reference interpreter's arithmetic;
* parser/printer round-trips preserve structure;
* value-graph hash-consing is idempotent and order-insensitive;
* the optimizer pipeline preserves interpreter behaviour on random
  generated programs (differential testing);
* whenever the validator accepts an optimized function, the interpreter
  agrees on random inputs (empirical soundness).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.generator import GeneratorConfig, ModuleShape, ProgramGenerator
from repro.ir import (
    Interpreter,
    clone_module,
    parse_module,
    print_module,
    verify_module,
)
from repro.ir.types import to_signed, to_unsigned
from repro.transforms import PAPER_PIPELINE, PassManager
from repro.transforms.constfold import fold_icmp, fold_int_binary
from repro.transforms.mem2reg import mem2reg
from repro.validator import validate
from repro.vgraph import ValueGraph

_INTS = st.integers(min_value=-(2**31), max_value=2**31 - 1)
_SMALL_INTS = st.integers(min_value=-100, max_value=100)
_BINOPS = st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"])
_PREDICATES = st.sampled_from(["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"])


class TestConstantFoldingMatchesInterpreter:
    @given(_BINOPS, _INTS, _INTS)
    def test_binary_fold_matches_interpreter(self, opcode, lhs, rhs):
        folded = fold_int_binary(opcode, lhs, rhs, 32)
        source = f"""
        define i32 @f() {{
        entry:
          %x = {opcode} i32 {to_signed(lhs, 32)}, {to_signed(rhs, 32)}
          ret i32 %x
        }}
        """
        module = parse_module(source)
        from repro.errors import InterpreterError
        from repro.ir import run_function

        try:
            executed = run_function(module, "f", []).return_value
        except InterpreterError:
            # Division by zero and friends: folding must refuse as well.
            assert folded is None
            return
        assert folded == executed

    @given(_PREDICATES, _INTS, _INTS)
    def test_icmp_fold_matches_interpreter(self, predicate, lhs, rhs):
        folded = fold_icmp(predicate, lhs, rhs, 32)
        source = f"""
        define i1 @f() {{
        entry:
          %x = icmp {predicate} i32 {to_signed(lhs, 32)}, {to_signed(rhs, 32)}
          ret i1 %x
        }}
        """
        from repro.ir import run_function

        executed = run_function(parse_module(source), "f", []).return_value
        assert int(folded) == executed

    @given(_INTS, st.integers(min_value=1, max_value=64))
    def test_signed_unsigned_roundtrip(self, value, bits):
        assert to_signed(to_unsigned(value, bits), bits) == to_signed(value, bits)
        assert 0 <= to_unsigned(value, bits) < (1 << bits)


class TestValueGraphProperties:
    @given(st.lists(st.tuples(_BINOPS, _SMALL_INTS, _SMALL_INTS), min_size=1, max_size=20))
    def test_hash_consing_is_order_insensitive(self, expressions):
        graph_forward = ValueGraph()
        graph_backward = ValueGraph()
        for opcode, lhs, rhs in expressions:
            graph_forward.make("binop", opcode, [graph_forward.const(lhs), graph_forward.const(rhs)])
        for opcode, lhs, rhs in reversed(expressions):
            graph_backward.make("binop", opcode, [graph_backward.const(lhs), graph_backward.const(rhs)])
        assert graph_forward.live_node_count() == graph_backward.live_node_count()

    @given(st.lists(st.tuples(_BINOPS, _SMALL_INTS, _SMALL_INTS), min_size=1, max_size=20))
    def test_duplicate_construction_creates_no_new_nodes(self, expressions):
        graph = ValueGraph()
        for opcode, lhs, rhs in expressions:
            graph.make("binop", opcode, [graph.const(lhs), graph.const(rhs)])
        count = graph.live_node_count()
        for opcode, lhs, rhs in expressions:
            graph.make("binop", opcode, [graph.const(lhs), graph.const(rhs)])
        assert graph.live_node_count() == count

    @given(_SMALL_INTS)
    def test_maximize_sharing_idempotent(self, seed):
        graph = ValueGraph()
        a = graph.make("param", 0)
        graph.make("binop", "add", [a, graph.const(seed)])
        first = graph.maximize_sharing()
        second = graph.maximize_sharing()
        assert second == 0 or first >= second


def _generated_module(seed: int, functions: int = 2):
    config = GeneratorConfig(statements=(3, 6), max_trip_count=6)
    shape = ModuleShape(functions=functions, seed=seed, function_config=config)
    module = ProgramGenerator(shape).generate_module()
    for fn in module.defined_functions():
        mem2reg(fn)
    return module


class TestGeneratedProgramProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_and_verify(self, seed):
        module = _generated_module(seed)
        verify_module(module)
        reparsed = parse_module(print_module(module))
        verify_module(reparsed)
        assert reparsed.instruction_count() == module.instruction_count()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000),
           st.lists(_SMALL_INTS, min_size=5, max_size=5))
    def test_pipeline_is_behaviour_preserving(self, seed, arguments):
        module = _generated_module(seed)
        optimized = clone_module(module)
        PassManager(PAPER_PIPELINE).run_on_module(optimized)
        verify_module(optimized)
        for fn in module.defined_functions():
            args = arguments[: len(fn.args)]
            before = Interpreter(module).run(fn, args).return_value
            after = Interpreter(optimized).run(optimized.get_function(fn.name), args).return_value
            assert before == after

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000),
           st.lists(_SMALL_INTS, min_size=5, max_size=5))
    def test_validator_acceptance_implies_behavioural_equality(self, seed, arguments):
        """Empirical soundness: accepted ⇒ interpreter agrees."""
        module = _generated_module(seed, functions=1)
        optimized = clone_module(module)
        PassManager(PAPER_PIPELINE).run_on_module(optimized)
        for fn in module.defined_functions():
            result = validate(fn, optimized.get_function(fn.name))
            if not result.is_success:
                continue
            args = arguments[: len(fn.args)]
            before = Interpreter(module).run(fn, args).return_value
            after = Interpreter(optimized).run(optimized.get_function(fn.name), args).return_value
            assert before == after
