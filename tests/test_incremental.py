"""Incremental revalidation: dirty-suffix planning, subgraph reuse, parity.

The hard correctness bar: every record an incremental revalidation
produces must be ``FunctionRecord.signature()``-identical to the record a
cold run over the same module/pipeline produces.  The tests here check
that bar per mutation kind (suffix swap, pass append, mid-pipeline edit)
on a corpus subset — ``benchmarks/stepwise_guard.py --incremental-parity``
extends the same check to every paper corpus — plus the unit behavior of
the new pieces: the shared fingerprint table, pipeline diffing, pristine
graph cloning/extension, and the delta validator.
"""

import gc
from dataclasses import replace

import pytest

from repro.analysis.manager import (
    CHECKPOINT_FINGERPRINTS,
    AnalysisManager,
    FingerprintTable,
    function_fingerprint,
)
from repro.bench.corpus import BENCHMARKS_BY_NAME, build_corpus
from repro.ir import parse_function
from repro.transforms.pass_manager import PassManager, checkpoint_chain
from repro.validator import (
    DEFAULT_CONFIG,
    PipelineDiff,
    Revalidator,
    ValidationCache,
    ValidatorConfig,
    diff_plan,
    llvm_md,
    reset_shared_revalidators,
    shared_revalidator,
    validate_chain_delta,
    validate_module_batch,
)
from repro.vgraph.builder import build_function_graph, extend_chain_graph
from repro.vgraph.graph import ValueGraph

PIPE = ("adce", "gvn", "sccp", "licm", "loop-deletion", "loop-unswitch", "dse")
#: The three revalidation mutation kinds: suffix swap, one pass appended,
#: a mid-pipeline edit (a dropped pass re-converges or dirties the tail).
MUTATIONS = {
    "swap": PIPE[:-2] + (PIPE[-1], PIPE[-2]),
    "append": PIPE + ("gvn",),
    "mid-edit": PIPE[:3] + PIPE[4:],
}
#: Three cheap corpora keep the in-tree matrix fast; ``stepwise_guard.py
#: --incremental-parity`` runs the same check over all twelve in CI.
CORPORA = ("sqlite", "milc", "libquantum")

#: A function several paper passes actually transform (gvn folds the
#: redundant add, dse kills the dead store), so checkpoint chains have
#: multiple versions.
REDUNDANT = """
define i32 @f(i32 %a, i32* %p) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %a, 1
  store i32 %x, i32* %p
  store i32 %y, i32* %p
  %r = add i32 %x, %y
  ret i32 %r
}
"""


def _signatures(report):
    return [record.signature() for record in report.records]


_COLD_MEMO = {}


def _cold(spec, passes, scale=0.1):
    memo_key = (spec.name, tuple(passes), scale)
    if memo_key not in _COLD_MEMO:
        module = build_corpus(spec, scale)
        _, report = llvm_md(module, passes, DEFAULT_CONFIG,
                            strategy="stepwise")
        _COLD_MEMO[memo_key] = _signatures(report)
    return _COLD_MEMO[memo_key]


@pytest.mark.parametrize("corpus", CORPORA)
@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_incremental_parity_per_mutation(corpus, mutation):
    """Warm revalidation records are signature-identical to cold records."""
    spec = BENCHMARKS_BY_NAME[corpus]
    tweaked = MUTATIONS[mutation]
    revalidator = Revalidator(replace(DEFAULT_CONFIG, incremental=True))
    module = build_corpus(spec, 0.1)
    _, first = revalidator.revalidate(module, PIPE)
    _, second = revalidator.revalidate(module, tweaked)
    assert _signatures(first) == _cold(spec, PIPE)
    assert _signatures(second) == _cold(spec, tweaked)


def test_pure_suffix_change_skips_unchanged_pairs():
    """A suffix tweak adopts every unchanged-prefix pair from the cache."""
    revalidator = Revalidator(replace(DEFAULT_CONFIG, incremental=True))
    module = build_corpus(BENCHMARKS_BY_NAME["sqlite"], 0.1)
    _, first = revalidator.revalidate(module, PIPE)
    assert first.shard_stats["pairs_skipped_unchanged"] == 0
    _, second = revalidator.revalidate(module, MUTATIONS["swap"])
    assert second.shard_stats["pairs_skipped_unchanged"] > 0
    # An identical third run adopts everything and extends nothing.
    _, third = revalidator.revalidate(module, MUTATIONS["swap"])
    assert third.shard_stats["chain_extensions"] == 0
    assert third.shard_stats["pairs_skipped_unchanged"] > 0


def test_incremental_survives_analysis_manager_eviction():
    """Retained chain state outlives the AnalysisManager's LRU bound."""
    config = replace(DEFAULT_CONFIG, incremental=True, analysis_cache_size=2)
    revalidator = Revalidator(config)
    spec = BENCHMARKS_BY_NAME["milc"]
    module = build_corpus(spec, 0.1)
    _, first = revalidator.revalidate(module, PIPE)
    _, second = revalidator.revalidate(module, MUTATIONS["swap"])
    assert revalidator.manager.stats()["analyses_evicted"] > 0
    cold_config = replace(DEFAULT_CONFIG, analysis_cache_size=2)
    cold_module = build_corpus(spec, 0.1)
    _, cold = llvm_md(cold_module, MUTATIONS["swap"], cold_config,
                      strategy="stepwise")
    assert _signatures(second) == _signatures(cold)


def test_incremental_rejects_wave_executor():
    with pytest.raises(ValueError, match="wave"):
        ValidatorConfig(incremental=True, executor="wave")


def test_incremental_requires_stepwise():
    config = replace(DEFAULT_CONFIG, incremental=True)
    module = build_corpus(BENCHMARKS_BY_NAME["lbm"], 0.1)
    with pytest.raises(ValueError, match="stepwise"):
        llvm_md(module, PIPE, config, strategy="whole")
    with pytest.raises(ValueError, match="stepwise"):
        validate_module_batch([module], PIPE, config, strategy="bisect")


def test_validate_module_batch_incremental_routing():
    config = replace(DEFAULT_CONFIG, incremental=True)
    spec = BENCHMARKS_BY_NAME["libquantum"]
    module = build_corpus(spec, 0.1)
    try:
        (result_module, report), = validate_module_batch(
            [module], PIPE, config, strategy="stepwise")
        assert report.shard_stats["incremental"] == 1
        assert _signatures(report) == _cold(spec, PIPE)
        assert result_module is not module
    finally:
        reset_shared_revalidators()


def test_shared_revalidator_is_per_config():
    try:
        config = replace(DEFAULT_CONFIG, incremental=True)
        other = replace(DEFAULT_CONFIG, incremental=True,
                        analysis_cache_size=7)
        assert shared_revalidator(config) is shared_revalidator(config)
        assert shared_revalidator(config) is not shared_revalidator(other)
    finally:
        reset_shared_revalidators()


# -- fingerprint table ----------------------------------------------------

def test_fingerprint_table_remember_and_lookup(parse_one):
    table = FingerprintTable()
    function = parse_one("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
    assert table.get(function) is None
    fingerprint = table.remember(function)
    assert fingerprint == function_fingerprint(function)
    assert table.get(function) == fingerprint
    assert table.fingerprint(function) == fingerprint
    assert len(table) == 1


def test_fingerprint_table_entries_die_with_the_function(parse_one):
    table = FingerprintTable()
    function = parse_one("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
    table.remember(function)
    assert len(table) == 1
    del function
    gc.collect()
    assert len(table) == 0


def test_fingerprint_lookup_does_not_store(parse_one):
    table = FingerprintTable()
    function = parse_one("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
    # ``fingerprint`` is the maybe-mutable-caller API: compute, don't pin.
    assert table.fingerprint(function) == function_fingerprint(function)
    assert table.get(function) is None


def test_changed_snapshots_share_the_global_table(parse_one):
    function = parse_one(REDUNDANT)
    snapshots = PassManager(("gvn",)).run_with_snapshots(function)
    changed = [snap for snap in snapshots if snap.changed]
    assert changed
    fingerprint = changed[0].fingerprint()
    assert CHECKPOINT_FINGERPRINTS.get(changed[0].function) == fingerprint


# -- pipeline diffing -----------------------------------------------------

def test_diff_plan_pure_suffix():
    diff = diff_plan(["a", "b", "c", "d"], ["a", "b", "c", "x"])
    assert isinstance(diff, PipelineDiff)
    assert diff.common_prefix == 3
    assert diff.unchanged_pairs == [0, 1]
    assert diff.dirty_pairs == [2]
    assert not diff.fully_unchanged


def test_diff_plan_reconvergent_tail():
    # A middle edit whose downstream checkpoints hash identically leaves
    # the tail pairs adoptable too, not just the common prefix.
    diff = diff_plan(["a", "b", "c", "d"], ["a", "x", "c", "d"])
    assert diff.unchanged_pairs == [2]
    assert diff.dirty_pairs == [0, 1]


def test_diff_plan_adopts_old_keys_verbatim():
    old_keys = ["k0", "k1", "k2"]
    diff = diff_plan(["a", "b", "c", "d"], ["a", "b", "c", "d"],
                     old_pair_keys=old_keys)
    assert diff.fully_unchanged
    assert [diff.pair_keys[i] for i in diff.unchanged_pairs] == old_keys


def test_diff_plan_cold_everything_dirty():
    diff = diff_plan([], ["a", "b", "c"])
    assert diff.common_prefix == 0
    assert diff.unchanged_pairs == []
    assert diff.dirty_pairs == [0, 1]
    assert len(diff.pair_keys) == 2


# -- pristine graph clone + extension -------------------------------------

def _chain(function, passes=PIPE):
    snapshots = PassManager(passes).run_with_snapshots(function)
    steps, versions = checkpoint_chain(function, snapshots)
    return steps, versions


def test_value_graph_restricted_clone_drops_unreachable(parse_one):
    graph = ValueGraph()
    manager = AnalysisManager()
    keep = build_function_graph(graph, parse_one(
        "define i32 @keep(i32 %a) {\nentry:\n  %r = add i32 %a, 1\n  ret i32 %r\n}"),
        manager)
    build_function_graph(graph, parse_one(
        "define i32 @drop(i32 %a) {\nentry:\n  %r = mul i32 %a, 7\n  ret i32 %r\n}"),
        manager)
    restricted = graph.clone(roots=keep.roots())
    assert restricted.live_node_count() < graph.live_node_count()
    assert set(restricted.reachable(keep.roots())) == set(
        graph.reachable(keep.roots()))


def test_restricted_clone_requires_merge_free_graph(parse_one):
    graph = ValueGraph()
    summary = build_function_graph(graph, parse_one(
        "define i32 @f(i32 %a) {\nentry:\n  %r = add i32 %a, 1\n  ret i32 %r\n}"),
        AnalysisManager())
    graph.redirect(graph.const(1), graph.const(2))
    with pytest.raises(ValueError, match="merge-free"):
        graph.clone(roots=summary.roots())


def test_extend_chain_graph_reuses_unchanged_versions(parse_one):
    function = parse_one(REDUNDANT)
    steps, versions = _chain(function)
    assert len(versions) >= 2
    fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(function)]
    fingerprints += [snap.fingerprint() for snap in steps]
    graph = ValueGraph()
    manager = AnalysisManager()
    summaries, reused, built = extend_chain_graph(graph, {}, versions,
                                                  manager, fingerprints)
    assert built == graph.next_id and reused == 0
    # Re-extending with every fingerprint retained builds nothing.
    retained = dict(zip(fingerprints, summaries))
    again, reused2, built2 = extend_chain_graph(graph, retained, versions,
                                                manager, fingerprints)
    assert built2 == 0 and reused2 == 0
    assert [s.roots() for s in again] == [s.roots() for s in summaries]


def test_validate_chain_delta_matches_isolated_accepts(parse_one):
    function = parse_one(REDUNDANT)
    steps, versions = _chain(function)
    assert len(versions) >= 2
    fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(function)]
    fingerprints += [snap.fingerprint() for snap in steps]
    graph = ValueGraph()
    manager = AnalysisManager()
    summaries, reused, built = extend_chain_graph(graph, {}, versions,
                                                  manager, fingerprints)
    dirty = list(range(len(versions) - 1))
    outcome = validate_chain_delta(graph, summaries, dirty, DEFAULT_CONFIG,
                                   nodes_built=built, nodes_reused=reused)
    assert outcome is not None
    verdicts, chain_stats = outcome
    assert set(verdicts) == set(dirty)
    assert all(result.is_success for result in verdicts.values())
    assert chain_stats["chain_pairs"] == len(dirty)


def test_validate_chain_delta_rejects_empty_dirty_set(parse_one):
    from repro.errors import ReproError
    function = parse_one(REDUNDANT)
    steps, versions = _chain(function)
    graph = ValueGraph()
    summaries, reused, built = extend_chain_graph(graph, {}, versions,
                                                  AnalysisManager())
    with pytest.raises(ReproError):
        validate_chain_delta(graph, summaries, [], DEFAULT_CONFIG)


# -- watch-mode CLI -------------------------------------------------------

def test_watch_cli_once_with_suffix_tweak(tmp_path, capsys):
    from repro.validator.watch import main
    status = main(["corpus:lbm", "--scale", "0.1", "--once",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--then-passes", *MUTATIONS["swap"],
                   "--min-skipped", "1"])
    out = capsys.readouterr().out
    assert status == 0
    assert "pairs_skipped_unchanged" in out


def test_watch_cli_min_hit_rate_failure(capsys):
    from repro.validator.watch import main
    # A cold in-memory run can't hit the cache: the smoke gate must trip.
    status = main(["corpus:lbm", "--scale", "0.1", "--once",
                   "--min-hit-rate", "0.99"])
    assert status == 1
    assert "FAIL" in capsys.readouterr().out
