"""Tests for the validator: per-function validation, the driver, and reports."""

import pytest

from repro.errors import ValidationInternalError
from repro.ir import clone_function, parse_function, parse_module
from repro.transforms import PAPER_PIPELINE, get_pass, optimize
from repro.validator import (
    DEFAULT_CONFIG,
    ValidationResult,
    ValidatorConfig,
    llvm_md,
    validate,
    validate_function_pipeline,
    validate_or_raise,
)
from repro.validator.report import FunctionRecord, ValidationReport


class TestValidateBasics:
    def test_identical_straightline_functions_trivially_equal(self, diamond_source):
        fn = parse_function(diamond_source)
        result = validate(fn, clone_function(fn))
        assert result.is_success
        assert result.reason == "trivially-equal"
        assert result.stats["trivially_equal"] == 1

    def test_identical_loop_functions_validate(self, loop_source):
        fn = parse_function(loop_source)
        result = validate(fn, clone_function(fn))
        assert result.is_success

    def test_validates_each_single_pass(self, mini_corpus):
        for pass_name in PAPER_PIPELINE:
            for fn in mini_corpus.defined_functions():
                optimized = clone_function(fn)
                if not get_pass(pass_name)(optimized):
                    continue
                result = validate(fn, optimized)
                # Not all passes validate 100% (that is the paper's point),
                # but ADCE and GVN should on this tiny corpus.
                if pass_name in ("adce", "gvn"):
                    assert result.is_success, (pass_name, fn.name, result.detail)

    def test_rejects_wrong_constant(self):
        before = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = mul i32 %a, 6\n  ret i32 %x\n}"
        )
        after = parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = mul i32 %a, 7\n  ret i32 %x\n}"
        )
        result = validate(before, after)
        assert not result.is_success
        assert result.reason == "normalization-exhausted"
        assert "result" in result.detail

    def test_rejects_swapped_branches(self, diamond_source):
        before = parse_function(diamond_source)
        after = clone_function(before)
        branch = after.entry.terminator
        branch.operands[1], branch.operands[2] = branch.operands[2], branch.operands[1]
        assert not validate(before, after).is_success

    def test_rejects_dropped_store_to_visible_memory(self):
        before = parse_function(
            """
            define void @f(i32* %p, i32 %v) {
            entry:
              store i32 %v, i32* %p
              ret void
            }
            """
        )
        after = parse_function(
            """
            define void @f(i32* %p, i32 %v) {
            entry:
              ret void
            }
            """
        )
        assert not validate(before, after).is_success

    def test_accepts_dropped_store_to_dead_alloca(self):
        before = parse_function(
            """
            define i32 @f(i32 %v) {
            entry:
              %p = alloca i32
              store i32 %v, i32* %p
              ret i32 %v
            }
            """
        )
        after = parse_function(
            "define i32 @f(i32 %v) {\nentry:\n  ret i32 %v\n}"
        )
        assert validate(before, after).is_success

    def test_void_vs_value_mismatch(self):
        before = parse_function("define void @f(i32 %a) {\nentry:\n  ret void\n}")
        after = parse_function("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
        assert not validate(before, after).is_success

    def test_irreducible_cfg_reported(self):
        fn = parse_function(
            """
            define i32 @irr(i1 %c) {
            entry:
              br i1 %c, label %a, label %b
            a:
              br label %b
            b:
              br i1 %c, label %a, label %exit
            exit:
              ret i32 0
            }
            """
        )
        result = validate(fn, clone_function(fn))
        assert not result.is_success
        assert result.reason == "irreducible-cfg"

    def test_validate_or_raise(self, loop_source):
        fn = parse_function(loop_source)
        validate_or_raise(fn, clone_function(fn))
        bad = clone_function(fn)
        bad.block("body").instructions[0].opcode = "sub"
        with pytest.raises(ValidationInternalError):
            validate_or_raise(fn, bad)

    def test_result_is_truthy(self, loop_source):
        fn = parse_function(loop_source)
        assert validate(fn, clone_function(fn))


class TestRuleConfiguration:
    SCCP_EXAMPLE = """
    define i32 @f(i1 %c) {
    entry:
      br i1 %c, label %then, label %else
    then:
      br label %join
    else:
      br label %join
    join:
      %a = phi i32 [ 1, %then ], [ 2, %else ]
      %b = phi i32 [ 1, %then ], [ 2, %else ]
      %cc = icmp eq i32 %a, %b
      br i1 %cc, label %t2, label %f2
    t2:
      br label %join2
    f2:
      br label %join2
    join2:
      %x = phi i32 [ 1, %t2 ], [ 0, %f2 ]
      ret i32 %x
    }
    """

    def test_needs_phi_rules(self):
        before = parse_function(self.SCCP_EXAMPLE)
        after = parse_function("define i32 @f(i1 %c) {\nentry:\n  ret i32 1\n}")
        with_rules = validate(before, after)
        assert with_rules.is_success
        without_rules = validate(before, after, ValidatorConfig(rule_groups=()))
        assert not without_rules.is_success

    def test_constfold_alone_insufficient_for_phi_collapse(self):
        before = parse_function(self.SCCP_EXAMPLE)
        after = parse_function("define i32 @f(i1 %c) {\nentry:\n  ret i32 1\n}")
        config = ValidatorConfig(rule_groups=("constfold",))
        assert not validate(before, after, config).is_success

    def test_matcher_variants_agree_on_simple_case(self, loop_source):
        fn = parse_function(loop_source)
        optimized = optimize(clone_function(fn), ["licm", "instcombine"])
        for matcher in ("simple", "partition", "combined"):
            result = validate(fn, optimized, ValidatorConfig(matcher=matcher))
            assert result.is_success, matcher

    def test_invalid_matcher_rejected(self):
        from repro.vgraph import Normalizer, ValueGraph

        with pytest.raises(ValueError):
            Normalizer(ValueGraph(), matcher="bogus")

    def test_with_rules_copy(self):
        config = DEFAULT_CONFIG.with_rules(("phi",))
        assert config.rule_groups == ("phi",)
        assert DEFAULT_CONFIG.rule_groups != ("phi",)


class TestDriverAndReport:
    def test_driver_keeps_validated_and_rolls_back_failures(self, mini_corpus):
        optimized_module, report = llvm_md(mini_corpus, PAPER_PIPELINE, label="mini")
        assert report.total_functions == len(mini_corpus.defined_functions())
        assert 0 <= report.validated_functions <= report.transformed_functions
        # The output module has the same function names and the originals
        # are untouched.
        assert set(optimized_module.functions) == set(mini_corpus.functions)
        for record in report.records:
            assert isinstance(record, FunctionRecord)

    def test_driver_rolls_back_buggy_pass(self, mini_corpus):
        _, report = llvm_md(mini_corpus, ["bug-swap-branch"], label="buggy")
        # Every function the injector touched and that misbehaves must be rejected;
        # the report must not claim a 100% validation rate unless nothing was
        # actually broken observably.
        for record in report.failures():
            assert record.result is not None and not record.result.is_success

    def test_validate_function_pipeline_skips_unchanged(self):
        fn = parse_function("define i32 @id(i32 %a) {\nentry:\n  ret i32 %a\n}")
        kept, record = validate_function_pipeline(fn, PAPER_PIPELINE)
        assert kept is fn
        assert not record.transformed
        assert record.result is None
        assert record.validated  # untransformed counts as fine

    def test_report_aggregates(self):
        report = ValidationReport(label="x")
        ok = FunctionRecord("a", {"gvn": True},
                            ValidationResult("a", True, "equal", elapsed=0.1))
        bad = FunctionRecord("b", {"gvn": True},
                             ValidationResult("b", False, "normalization-exhausted", elapsed=0.2))
        untouched = FunctionRecord("c", {"gvn": False}, None)
        for record in (ok, bad, untouched):
            report.add(record)
        assert report.total_functions == 3
        assert report.transformed_functions == 2
        assert report.validated_functions == 1
        assert report.rejected_functions == 1
        assert report.validation_rate == pytest.approx(0.5)
        assert report.total_time == pytest.approx(0.3)
        assert report.reasons_histogram() == {"normalization-exhausted": 1}
        assert "50.0%" in report.summary_line()
        row = report.to_table_row()
        assert row["transformed"] == 2 and row["validated"] == 1


class TestPipelineValidation:
    def test_full_pipeline_on_corpus(self, mini_corpus):
        """The pipeline validates a reasonable fraction of this tiny corpus."""
        _, report = llvm_md(mini_corpus, PAPER_PIPELINE, label="mini")
        assert report.transformed_functions > 0
        assert report.validation_rate >= 0.5

    def test_validated_functions_really_equivalent(self, mini_corpus):
        """Spot-check soundness: validated optimized bodies behave identically."""
        from repro.ir import Interpreter, clone_module

        optimized_module, report = llvm_md(mini_corpus, PAPER_PIPELINE)
        for record in report.records:
            if not (record.transformed and record.validated):
                continue
            original = mini_corpus.get_function(record.name)
            optimized = optimized_module.get_function(record.name)
            for base in [(2, 4, 6, 8, 10), (-1, 3, 0, 5, 2)]:
                args = list(base[: len(original.args)])
                before = Interpreter(mini_corpus).run(original, args).return_value
                after = Interpreter(optimized_module).run(optimized, args).return_value
                assert before == after, record.name
