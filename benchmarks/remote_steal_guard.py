#!/usr/bin/env python3
"""Remote-steal guard: cross-host scheduling must change nothing but speed.

Spawns two reconnecting remote worker subprocesses against a fixed
loopback port plus a standalone served proof store, then drives four
legs over all twelve paper corpora:

* **serial** — the fault-free oracle every other leg must match.
* **tcp** — the ``steal`` backend over its TCP transport with the remote
  workers; per-function record signatures must be byte-identical to
  serial (cold: no cache anywhere).
* **store cold / store warm** — the driver consulting the served proof
  store over ``config.steal_connect`` (no local cache files).  The cold
  run populates the store through write-behind flushes; the warm run
  must then answer **every** pair from it (``distinct_pairs == 0``)
  using batched planning-time gets (``store_batched_gets > 0``) — and
  still match serial byte for byte.
* **kill** — the tcp leg under a seeded ``conn-drop`` fault (the
  coordinator severs a worker's connection right after handing it an
  item).  Records must still match serial with zero denials, the
  backend must not degrade to serial, the proof cache must stay
  unpoisoned, and somewhere in the sweep the drop must actually land:
  ``workers_respawned >= 1`` and ``item_retries >= 1``.

Run with::

    PYTHONPATH=src python benchmarks/remote_steal_guard.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import pathlib
import socket
import sys
import tempfile
import time
from dataclasses import replace

from repro.bench.corpus import PAPER_BENCHMARKS, build_corpus
from repro.transforms import PAPER_PIPELINE
from repro.validator import faults
from repro.validator.cache import ValidationCache
from repro.validator.config import DEFAULT_CONFIG
from repro.validator.driver import validate_module_batch
from repro.validator.faults import FaultPlan, FaultSpec
from repro.validator.scheduler.remote import ServedStore, spawn_workers
from repro.validator.scheduler.transport import TcpStealPool
from repro.validator.validate import UNCACHEABLE_REASONS

WORKERS = 2


def probe_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def run_one(module, config, cache):
    start = time.perf_counter()
    [(_, report)] = validate_module_batch(
        [module], PAPER_PIPELINE, config=config, cache=cache,
        strategy="stepwise")
    return report, time.perf_counter() - start


def signatures(report):
    return [record.signature() for record in report.records]


def poisoned_entries(cache):
    return [key for key, result in cache._results.items()
            if result.reason in UNCACHEABLE_REASONS]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: tiny, CI-friendly)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(
                            "benchmarks/artifacts/remote_steal_guard.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    steal_address = f"127.0.0.1:{probe_port()}"
    worker_procs = spawn_workers(steal_address, WORKERS, reconnect=True,
                                 patience=900.0)
    store_dir = tempfile.TemporaryDirectory(prefix="repro-remote-steal-")
    store_pool = TcpStealPool(
        1, None, listen="127.0.0.1:0",
        store=ServedStore(store_dir.name, backend="sqlite"))
    store_address = f"{store_pool.address[0]}:{store_pool.address[1]}"

    tcp_config = replace(DEFAULT_CONFIG, executor="steal",
                         concurrency=WORKERS, steal_transport="tcp",
                         steal_listen=steal_address)
    kill_plan = FaultPlan.of(FaultSpec("conn-drop", "crash", "", 2, 1),
                             seed=7)
    failures = []
    rows = []
    try:
        for spec in PAPER_BENCHMARKS:
            module = build_corpus(spec, args.scale)
            faults.reset()
            serial, _ = run_one(
                module, replace(DEFAULT_CONFIG, executor="serial"),
                ValidationCache())
            serial_sigs = signatures(serial)

            legs = {}
            for leg, config in (
                    ("tcp", tcp_config),
                    ("store_cold", replace(DEFAULT_CONFIG,
                                           steal_connect=store_address)),
                    ("store_warm", replace(DEFAULT_CONFIG,
                                           steal_connect=store_address)),
                    ("kill", replace(tcp_config, fault_plan=kill_plan))):
                faults.reset()
                cache = ValidationCache() if leg in ("tcp", "kill") else None
                report, elapsed = run_one(module, config, cache)
                shard = report.shard_stats or {}
                legs[leg] = (report, shard, elapsed)
                if signatures(report) != serial_sigs:
                    failures.append(
                        f"{spec.name}/{leg}: record signatures diverged "
                        f"from serial")
                if leg in ("tcp", "kill"):
                    if shard.get("pool_degraded", 0):
                        failures.append(
                            f"{spec.name}/{leg}: steal backend degraded "
                            f"to serial")
                    if poisoned_entries(cache):
                        failures.append(
                            f"{spec.name}/{leg}: synthetic denials "
                            f"poisoned the proof cache")

            warm_shard = legs["store_warm"][1]
            if warm_shard.get("distinct_pairs", 0):
                failures.append(
                    f"{spec.name}/store_warm: {warm_shard['distinct_pairs']} "
                    f"pairs re-validated despite a populated served store")
            if serial_sigs and not warm_shard.get("store_batched_gets", 0):
                failures.append(
                    f"{spec.name}/store_warm: planning never issued a "
                    f"batched get against the served store")

            kill_shard = legs["kill"][1]
            rows.append({
                "benchmark": spec.name,
                "records": len(serial_sigs),
                "tcp_workers_joined":
                    legs["tcp"][1].get("remote_workers_joined", 0),
                "tcp_time_s": round(legs["tcp"][2], 3),
                "store_cold_flushes":
                    legs["store_cold"][1].get("store_flushes", 0),
                "store_warm_rpcs": warm_shard.get("store_rpcs", 0),
                "store_warm_batched_gets":
                    warm_shard.get("store_batched_gets", 0),
                "store_warm_distinct_pairs":
                    warm_shard.get("distinct_pairs", 0),
                "kill_respawned": kill_shard.get("workers_respawned", 0),
                "kill_item_retries": kill_shard.get("item_retries", 0),
                "kill_degraded": kill_shard.get("pool_degraded", 0),
            })
            print(f"{spec.name:>12}: records={len(serial_sigs):<3} "
                  f"tcp_joined={rows[-1]['tcp_workers_joined']} "
                  f"warm_gets={rows[-1]['store_warm_batched_gets']} "
                  f"warm_pairs={rows[-1]['store_warm_distinct_pairs']} "
                  f"kill_respawned={rows[-1]['kill_respawned']} "
                  f"kill_retries={rows[-1]['kill_item_retries']}")
    finally:
        for proc in worker_procs:
            proc.terminate()
        for proc in worker_procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()
        store_pool.close()
        store_dir.cleanup()

    # Corpora too small to engage the pooled path never dispatch, so the
    # conn-drop proof is sweep-level: somewhere the severed connection
    # must have cost exactly a respawn and a requeue.
    if not any(row["kill_respawned"] for row in rows):
        failures.append(
            "kill: no corpus in the sweep exercised a worker respawn "
            "after the injected connection drop")
    if not any(row["kill_item_retries"] for row in rows):
        failures.append(
            "kill: no corpus in the sweep requeued an in-flight item "
            "after the injected connection drop")
    if not any(row["tcp_workers_joined"] for row in rows):
        failures.append(
            "tcp: no corpus in the sweep was served by a remote worker")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(
        {"schema": 1, "scale": args.scale, "workers": WORKERS,
         "rows": rows}, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")

    if failures:
        print("\nREMOTE STEAL REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nremote steal guard OK: tcp, served-store and kill-mid-batch "
          "legs matched serial records on every corpus; the warm leg "
          "answered every pair from the served store over batched gets")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
