#!/usr/bin/env python3
"""Chaos guard: seeded fault schedules must not change what validation decides.

Runs four deterministic fault schedules — a worker **crash**, a pair
**hang**, a proof-store **flush** failure and a **corrupt** result
payload — over three corpora on both pooled scheduling backends
(``pool`` and ``steal``), and fails unless:

* every chaotic run *completes* and produces per-function record
  signatures identical to a fault-free serial baseline, except for the
  records explicitly denied by the schedule (a hung pair settles with
  reason ``"timeout"``; a poison pair settles as ``"quarantined"``) —
  and there is at most one such denial per schedule;
* crash schedules recover by **supervision**, not degradation: the shard
  stats must show ``workers_respawned >= 1`` and ``pool_degraded == 0``
  (a single worker death costs one respawn, never a serial rerun);
* the proof cache is never poisoned: after every chaotic run, no cache
  entry carries a synthetic denial reason (``timeout``, ``quarantined``,
  ``budget-exhausted``), and a locked sqlite flush retries to disk
  without counting a store error.

With ``--sites network`` the sweep instead exercises the TCP steal
transport's fault plane on the ``steal`` backend with loopback remote
worker subprocesses: a **conn-drop** (the coordinator loses a worker's
connection right after handing it an item — must recover by respawn +
requeue, never degradation), a **conn-delay** (a result frame is held
back — ordering noise only, records must not change) and a rejected
**handshake** (the worker's first join attempt is refused — its
reconnect loop must get it accepted on the retry).  Every schedule must
still produce baseline-identical records with zero denials.

The schedules are seeded (:class:`~repro.validator.faults.FaultPlan` is
deterministic per process), so a failure here reproduces locally with
the same command.

Run with::

    PYTHONPATH=src python benchmarks/chaos_guard.py [--scale 0.1] [--out FILE]
    PYTHONPATH=src python benchmarks/chaos_guard.py --sites network
"""

import argparse
import json
import pathlib
import socket
import sys
import tempfile
import time
from dataclasses import replace

from repro.bench.corpus import BENCHMARKS_BY_NAME, build_corpus
from repro.transforms import PAPER_PIPELINE
from repro.validator import faults
from repro.validator.cache import ValidationCache
from repro.validator.config import DEFAULT_CONFIG
from repro.validator.driver import validate_module_batch
from repro.validator.faults import FaultPlan, FaultSpec
from repro.validator.scheduler.remote import spawn_workers
from repro.validator.validate import UNCACHEABLE_REASONS

CORPORA = ("sqlite", "milc", "libquantum")
CONCURRENCY = 2

#: schedule name -> (plan factory, config overrides, max denied records).
#: Fault-site visit counters are per *process*, so a count=1 hang spec
#: fires once in the parent and once in each worker — the denial
#: allowance for the hang schedule is therefore CONCURRENCY + 1.
SCHEDULES = {
    "crash": (None, {}, 0),  # plan is backend-specific, built below
    "hang": (lambda: FaultPlan.hang_pair(match="", seconds=5.0, at=1, count=1),
             {"pair_timeout": 0.2, "chain_graphs": False}, CONCURRENCY + 1),
    "flush": (lambda: FaultPlan.flush_error("lock", at=1, count=1), {}, 0),
    "corrupt": (lambda: FaultPlan.corrupt_payload(), {}, 0),
}


#: schedule name -> plan factory for the ``--sites network`` sweep.  All
#: three must recover with zero denied records: conn-drop requeues, the
#: delayed result still arrives, and a rejected handshake is retried by
#: the worker's reconnect loop.
NETWORK_SCHEDULES = {
    "conn-drop": lambda: FaultPlan.of(
        FaultSpec("conn-drop", "crash", "", 2, 1), seed=7),
    "conn-delay": lambda: FaultPlan.of(
        FaultSpec("conn-delay", "hang", "", 1, 1, 0.3), seed=7),
    "handshake": lambda: FaultPlan.of(
        FaultSpec("handshake", "raise", "worker", 1, 1), seed=7),
}


def crash_plan(backend: str) -> FaultPlan:
    """Kill one worker, exactly once, on a parent-side schedule.

    Parent-side sites ("steal-dispatch", "pool-batch") count across
    respawns, so "once" means once; a worker-side crash counter would
    reset with the fresh process and fire again.
    """
    if backend == "steal":
        return FaultPlan.of(
            FaultSpec("steal-dispatch", "crash", "", 2, 1), seed=7)
    return FaultPlan.crash_pool_batch(seed=7)


def run_one(module, config, cache):
    start = time.perf_counter()
    [(_, report)] = validate_module_batch(
        [module], PAPER_PIPELINE, config=config, cache=cache,
        strategy="stepwise")
    elapsed = time.perf_counter() - start
    return report, elapsed


def poisoned_entries(cache):
    return [key for key, result in cache._results.items()
            if result.reason in UNCACHEABLE_REASONS]


def network_sweep(args) -> int:
    """Seeded network faults on the TCP steal transport must change nothing.

    Spawns two reconnecting remote workers against a fixed loopback port,
    then runs every :data:`NETWORK_SCHEDULES` plan per corpus through the
    coordinator.  All schedules must settle every record identically to a
    fault-free serial baseline with zero denials, zero degradations and
    an unpoisoned cache; conn-drop must additionally prove supervised
    recovery (a respawn) somewhere in the sweep, and every handshake run
    must have actually rejected (and re-admitted) a worker.
    """
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    address = f"127.0.0.1:{port}"
    workers = spawn_workers(address, CONCURRENCY, reconnect=True,
                            patience=900.0)

    failures = []
    rows = []
    try:
        for corpus_name in CORPORA:
            module = build_corpus(BENCHMARKS_BY_NAME[corpus_name], args.scale)
            faults.reset()
            baseline, _ = run_one(
                module, replace(DEFAULT_CONFIG, executor="serial"),
                ValidationCache())
            clean_sigs = [r.signature() for r in baseline.records]
            clean_by_name = {sig["name"]: sig for sig in clean_sigs}
            for schedule, make_plan in NETWORK_SCHEDULES.items():
                plan = make_plan()
                config = replace(DEFAULT_CONFIG, executor="steal",
                                 concurrency=CONCURRENCY,
                                 steal_transport="tcp",
                                 steal_listen=address, fault_plan=plan)
                faults.reset()
                cache = ValidationCache()
                report, elapsed = run_one(module, config, cache)
                sigs = [r.signature() for r in report.records]
                shard = report.shard_stats or {}
                denied = [sig for sig in sigs
                          if any(reason in json.dumps(sig)
                                 for reason in ("timeout", "quarantined"))]
                mismatched = [sig["name"] for sig in sigs
                              if sig != clean_by_name.get(sig["name"])]
                if len(sigs) != len(clean_sigs):
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: {len(sigs)} records "
                        f"vs {len(clean_sigs)} clean")
                if mismatched:
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: records diverged "
                        f"from the fault-free baseline for: "
                        f"{', '.join(mismatched)}")
                if denied:
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: {len(denied)} denied "
                        f"records (network schedules allow none)")
                if shard.get("pool_degraded", 0):
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: the transport fault "
                        f"degraded the steal backend to serial")
                poisoned = poisoned_entries(cache)
                if poisoned:
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: {len(poisoned)} "
                        f"synthetic denials poisoned the proof cache")
                # A corpus too small to engage the pooled path never
                # starts a coordinator, so nobody connects and nothing
                # can be rejected; the sweep-level check below still
                # requires a rejection on some corpus.
                if schedule == "handshake" \
                        and shard.get("remote_workers_joined", 0) \
                        and not shard.get("handshakes_rejected", 0):
                    failures.append(
                        f"{corpus_name}/tcp/{schedule}: workers joined but "
                        f"the schedule never rejected a handshake")
                rows.append({
                    "corpus": corpus_name,
                    "backend": "tcp",
                    "schedule": schedule,
                    "records": len(sigs),
                    "denied": len(denied),
                    "mismatched": len(mismatched),
                    "workers_respawned": shard.get("workers_respawned", 0),
                    "item_retries": shard.get("item_retries", 0),
                    "pool_degraded": shard.get("pool_degraded", 0),
                    "workers_joined": shard.get("remote_workers_joined", 0),
                    "workers_left": shard.get("remote_workers_left", 0),
                    "handshakes_rejected": shard.get("handshakes_rejected", 0),
                    "time_s": round(elapsed, 3),
                })
                print(f"{corpus_name:>10}/tcp   {schedule:<10} "
                      f"records={len(sigs):<3} denied={len(denied)} "
                      f"respawned={shard.get('workers_respawned', 0)} "
                      f"joined={shard.get('remote_workers_joined', 0)} "
                      f"rejected={shard.get('handshakes_rejected', 0)} "
                      f"({elapsed:.2f}s)")
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()

    # Small corpora may settle before the second dispatch the conn-drop
    # spec waits for, so the respawn proof is sweep-level, like the
    # process-site crash schedule's.
    if not any(row["workers_respawned"] for row in rows
               if row["schedule"] == "conn-drop"):
        failures.append(
            "conn-drop: no corpus in the sweep exercised a worker "
            "respawn after a severed connection")
    if not any(row["handshakes_rejected"] for row in rows
               if row["schedule"] == "handshake"):
        failures.append(
            "handshake: no corpus in the sweep exercised a handshake "
            "rejection")

    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({"scale": args.scale, "sites": "network",
                                   "runs": rows}, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        print("\nCHAOS REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nchaos guard OK: every seeded network fault schedule recovered "
          "with baseline-identical records and an unpoisoned proof cache")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (default 0.1: tiny, CI-friendly)")
    parser.add_argument("--sites", choices=("process", "network"),
                        default="process",
                        help="fault plane to sweep: in-process scheduling "
                             "sites (the default) or the TCP transport's "
                             "network sites with remote worker subprocesses")
    parser.add_argument("--out", default=None,
                        help="write the per-run table to this JSON file")
    args = parser.parse_args()

    if args.sites == "network":
        return network_sweep(args)

    failures = []
    rows = []
    for corpus_name in CORPORA:
        module = build_corpus(BENCHMARKS_BY_NAME[corpus_name], args.scale)
        baselines = {}
        for backend in ("pool", "steal"):
            for schedule, (make_plan, overrides, max_denied) in \
                    SCHEDULES.items():
                if schedule == "corrupt" and backend != "steal":
                    continue  # payloads only travel the steal channel
                # Fault-free serial baseline under the same non-fault
                # config knobs (one per override set, shared by backends).
                baseline_key = tuple(sorted(overrides.items()
                                            - {("pair_timeout", 0.2)}))
                if baseline_key not in baselines:
                    base_config = replace(DEFAULT_CONFIG, executor="serial",
                                          **{k: v for k, v in overrides.items()
                                             if k != "pair_timeout"})
                    faults.reset()
                    baseline, _ = run_one(module, base_config,
                                          ValidationCache())
                    baselines[baseline_key] = [r.signature()
                                               for r in baseline.records]
                clean_sigs = baselines[baseline_key]

                plan = make_plan() if make_plan is not None \
                    else crash_plan(backend)
                config = replace(DEFAULT_CONFIG, executor=backend,
                                 concurrency=CONCURRENCY, fault_plan=plan,
                                 **overrides)
                faults.reset()
                if schedule == "flush":
                    with tempfile.TemporaryDirectory() as tmp:
                        cache = ValidationCache(tmp, backend="sqlite",
                                                fault_plan=plan)
                        report, elapsed = run_one(module, config, cache)
                        flushed = cache.save()
                        stats = cache.stats()
                        if stats.get("store_errors", 0):
                            failures.append(
                                f"{corpus_name}/{backend}/{schedule}: locked "
                                f"flush degraded the store "
                                f"(store_errors={stats['store_errors']})")
                        if len(cache) and not flushed \
                                and not stats.get("store_flushes", 0):
                            failures.append(
                                f"{corpus_name}/{backend}/{schedule}: "
                                f"nothing reached the sqlite store")
                else:
                    cache = ValidationCache()
                    report, elapsed = run_one(module, config, cache)
                    stats = cache.stats()

                sigs = [r.signature() for r in report.records]
                shard = report.shard_stats or {}
                clean_by_name = {sig["name"]: sig for sig in clean_sigs}
                denied = [sig for sig in sigs
                          if any(reason in json.dumps(sig)
                                 for reason in ("timeout", "quarantined"))]
                mismatched = [sig["name"] for sig in sigs
                              if sig not in denied
                              and sig != clean_by_name.get(sig["name"])]
                if len(sigs) != len(clean_sigs):
                    failures.append(
                        f"{corpus_name}/{backend}/{schedule}: "
                        f"{len(sigs)} records vs {len(clean_sigs)} clean")
                if mismatched:
                    failures.append(
                        f"{corpus_name}/{backend}/{schedule}: records "
                        f"diverged from the fault-free baseline for: "
                        f"{', '.join(mismatched)}")
                if len(denied) > max_denied:
                    failures.append(
                        f"{corpus_name}/{backend}/{schedule}: {len(denied)} "
                        f"denied records (schedule allows {max_denied})")
                poisoned = poisoned_entries(cache)
                if poisoned:
                    failures.append(
                        f"{corpus_name}/{backend}/{schedule}: {len(poisoned)} "
                        f"synthetic denials poisoned the proof cache")
                if schedule == "crash":
                    if shard.get("pool_degraded", 0):
                        failures.append(
                            f"{corpus_name}/{backend}/{schedule}: crash "
                            f"degraded the backend to serial instead of "
                            f"respawning")
                    # A corpus too small to engage the pooled path never
                    # dispatches, so the kill site never fires there; the
                    # sweep-level check below still requires every
                    # backend to prove a respawn on some corpus.
                    if shard.get("workers", 0) \
                            and not shard.get("workers_respawned", 0):
                        failures.append(
                            f"{corpus_name}/{backend}/{schedule}: workers "
                            f"ran but the crash schedule never exercised "
                            f"a respawn")
                rows.append({
                    "corpus": corpus_name,
                    "backend": backend,
                    "schedule": schedule,
                    "records": len(sigs),
                    "denied": len(denied),
                    "mismatched": len(mismatched),
                    "workers_respawned": shard.get("workers_respawned", 0),
                    "pairs_quarantined": shard.get("pairs_quarantined", 0),
                    "item_retries": shard.get("item_retries", 0),
                    "pool_degraded": shard.get("pool_degraded", 0),
                    "store_retries": stats.get("store_retries", 0),
                    "store_errors": stats.get("store_errors", 0),
                    "time_s": round(elapsed, 3),
                })
                print(f"{corpus_name:>10}/{backend:<5} {schedule:<7} "
                      f"records={len(sigs):<3} denied={len(denied)} "
                      f"respawned={shard.get('workers_respawned', 0)} "
                      f"retries={shard.get('item_retries', 0)} "
                      f"degraded={shard.get('pool_degraded', 0)} "
                      f"({elapsed:.2f}s)")

    # Every backend must have proven supervised recovery somewhere in the
    # sweep — a crash that only ever lands on too-small corpora would
    # otherwise pass without exercising the respawn path at all.
    for backend in ("pool", "steal"):
        if not any(row["workers_respawned"] for row in rows
                   if row["backend"] == backend
                   and row["schedule"] == "crash"):
            failures.append(
                f"{backend}: no corpus in the sweep exercised a worker "
                f"respawn under the crash schedule")

    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({"scale": args.scale, "sites": "process",
                                   "runs": rows}, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        print("\nCHAOS REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nchaos guard OK: every seeded fault schedule recovered with "
          "baseline-identical records and an unpoisoned proof cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
