"""Figure 4 — validation results for the full optimization pipeline."""

from repro.bench import figure4, format_table


def test_figure4_pipeline_validation(benchmark, bench_scale, fast_benchmarks):
    rows = benchmark.pedantic(
        figure4, kwargs={"scale": bench_scale, "benchmarks": fast_benchmarks},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, title=f"Figure 4 (corpus scale {bench_scale})"))
    overall = rows[-1]
    assert overall["benchmark"] == "overall"
    # The paper validates ~80% of transformed functions overall; the
    # reproduction's corpora are smaller and its GVN/LICM differ in
    # aggressiveness, so we only assert the qualitative claim: a clear
    # majority of transformed functions validate.
    assert overall["transformed"] > 0
    assert overall["rate"] >= 50.0
