"""§5.1 — validation wall-clock time per benchmark.

The paper reports 19m19s for gcc, 2m56s for perlbench and 55s for SQLite
(on 2011 hardware, at full corpus size).  Here only the ordering and the
rough ratios are meaningful: the gcc corpus takes the longest to validate.
"""

from repro.bench import format_table, validation_timing


def test_validation_time_ordering(benchmark, bench_scale):
    rows = benchmark.pedantic(
        validation_timing,
        kwargs={"scale": bench_scale, "benchmarks": ["sqlite", "perlbench", "gcc"]},
        iterations=1, rounds=1,
    )
    print()
    print(format_table(rows, title=f"Validation time (corpus scale {bench_scale})"))
    by_name = {row["benchmark"]: row for row in rows if row["benchmark"] != "overall"}
    assert by_name["gcc"]["time_s"] >= by_name["sqlite"]["time_s"]
