"""§5.1 — validation wall-clock time per benchmark.

The paper reports 19m19s for gcc, 2m56s for perlbench and 55s for SQLite
(on 2011 hardware, at full corpus size).  Here only the ordering and the
rough ratios are meaningful: the gcc corpus takes the longest to validate.

Besides timing, this benchmark records the normalization engine's work
counters (rule invocations, worklist pushes, dispatch-index hits) and a
worklist-vs-fullscan engine comparison into a JSON artifact
(``benchmarks/artifacts/validation_time.json`` by default; override the
directory with ``REPRO_BENCH_ARTIFACT_DIR``) so the perf trajectory can be
tracked across PRs.
"""

import json
import os
import pathlib

from repro.bench import engine_comparison, format_table, validation_timing

#: Benchmarks measured by this file (a light subset; the paper's ordering
#: claim only needs the extremes).
TIMED_BENCHMARKS = ["sqlite", "perlbench", "gcc"]


def _artifact_path() -> pathlib.Path:
    directory = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
    if directory:
        base = pathlib.Path(directory)
    else:
        base = pathlib.Path(__file__).resolve().parent / "artifacts"
    base.mkdir(parents=True, exist_ok=True)
    return base / "validation_time.json"


def write_artifact(scale: float, timing_rows, comparison_rows) -> pathlib.Path:
    """Persist the run's stats so future PRs can diff the perf trajectory."""
    path = _artifact_path()
    payload = {
        "schema": 1,
        "scale": scale,
        "benchmarks": TIMED_BENCHMARKS,
        "timing": timing_rows,
        "engine_comparison": comparison_rows,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_validation_time_ordering(benchmark, bench_scale):
    rows = benchmark.pedantic(
        validation_timing,
        kwargs={"scale": bench_scale, "benchmarks": TIMED_BENCHMARKS},
        iterations=1, rounds=1,
    )
    comparison = engine_comparison(scale=bench_scale, benchmarks=["sqlite", "perlbench"])
    artifact = write_artifact(bench_scale, rows, comparison)
    print()
    print(format_table(rows, title=f"Validation time (corpus scale {bench_scale})"))
    print(format_table(comparison, title="Engine comparison (worklist vs fullscan)"))
    print(f"stats artifact: {artifact}")
    by_name = {row["benchmark"]: row for row in rows if row["benchmark"] != "overall"}
    assert by_name["gcc"]["time_s"] >= by_name["sqlite"]["time_s"]
    # The worklist engine must agree with the baseline and do strictly
    # less rule-application work (the ISSUE's acceptance criterion).
    for row in comparison:
        assert row["verdicts_agree"], row
        if row["fullscan_invocations"]:
            assert row["worklist_invocations"] < row["fullscan_invocations"], row
