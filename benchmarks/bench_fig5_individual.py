"""Figure 5 — per-optimization transformed/validated function counts."""

from repro.bench import figure5, format_table
from repro.transforms import PAPER_PIPELINE


def test_figure5_individual_optimizations(benchmark, bench_scale, fast_benchmarks):
    results = benchmark.pedantic(
        figure5, kwargs={"scale": bench_scale, "benchmarks": fast_benchmarks},
        iterations=1, rounds=1,
    )
    print()
    totals = {}
    for pass_name, rows in results.items():
        transformed = sum(row["transformed"] for row in rows)
        validated = sum(row["validated"] for row in rows)
        totals[pass_name] = (transformed, validated)
        print(format_table(rows, title=f"Figure 5 — {pass_name}"))
        print()
    assert set(results) == set(PAPER_PIPELINE)
    # GVN transforms more functions than the loop passes (as in the paper,
    # where it "performs many more transformations than the other
    # optimizations").
    assert totals["gvn"][0] >= totals["loop-deletion"][0]
    assert totals["gvn"][0] >= totals["loop-unswitch"][0]
    # ADCE and GVN validate essentially everywhere on these corpora.
    for easy in ("adce", "gvn"):
        transformed, validated = totals[easy]
        if transformed:
            assert validated / transformed >= 0.9
