#!/usr/bin/env python3
"""CI perf guard: gate deterministic work counters against a committed baseline.

Validation work is deterministic for a fixed corpus, configuration and
``PYTHONHASHSEED``: the number of graph nodes constructed, normalization
rule invocations and equivalence (normalize) runs of a sweep never vary
between runs — only wall-clock does.  That makes them gateable: this
script compares the counters of a freshly produced
``benchmarks/artifacts/chain_graphs.json`` artifact (see
``bench_chain_graphs.py``, which pins ``PYTHONHASHSEED=0``) against the
committed ``benchmarks/perf_baseline.json`` and fails when

* any counter at any recorded corpus scale regressed by more than
  ``--tolerance`` (default 10%) — the absolute gate; or
* any counter's **growth** between the smallest and largest recorded
  scale exceeds the baseline's growth by more than ``--growth-tolerance``
  (default 10%) — the *trendline* gate.  A change whose per-scale
  absolutes squeak under the tolerance but whose scaling curve bent
  super-linear is a scaling regression and fails here.

Improvements are reported but never fail the guard; refresh the baseline
with ``--update-baseline`` after an intentional perf change and commit
it.  Single-scale (schema 1) artifacts/baselines are still accepted —
they simply have no trendline to gate.

When a ``benchmarks/artifacts/proof_store.json`` artifact is present
(produced by ``bench_proof_store.py``), the guard additionally checks
the proof-store I/O comparison it carries: the warm ``sqlite`` run's
total store I/O bytes must be below the warm ``json`` run's, and its
lazily faulted entry count must be strictly below the store's entry
count.  A missing artifact skips this gate with a note — the counter
baseline gate runs either way.

When a ``benchmarks/artifacts/remote_steal.json`` artifact is present
(produced by ``bench_remote_steal.py``), the guard also bounds the
cross-host overhead it carries: the TCP steal transport must answer at
most 1.15x the pipe transport's total validated queries, and the warm
served-proof-store leg must have issued at most one get RPC per work
batch with the batched-prefetch path exercised.  Absent artifact, same
skip-with-a-note rule.

Run with::

    PYTHONPATH=src python benchmarks/bench_chain_graphs.py --scales 0.1 0.2 0.3
    PYTHONPATH=src python benchmarks/perf_guard.py
"""

import argparse
import json
import pathlib
import sys

#: Counters gated by the guard, read from the artifact's chain-mode totals
#: (the default execution mode) — plus the per-pair totals, so a
#: regression on the fallback/oracle path is caught too.
GATED_MODES = ("chain", "per_pair")
GATED_COUNTERS = ("nodes_built", "nodes_created", "rule_invocations",
                  "normalize_runs")


def _scale_key(scale) -> str:
    """Canonical string form of a scale (``0.2`` and ``"0.2"`` collapse)."""
    try:
        return f"{float(scale):g}"
    except (TypeError, ValueError):
        return str(scale)


def _flatten_totals(totals: dict) -> dict:
    """Extract the gated ``mode.counter`` values from one totals dict."""
    counters = {}
    for mode in GATED_MODES:
        for key in GATED_COUNTERS:
            counters[f"{mode}.{key}"] = int(totals.get(mode, {}).get(key, 0))
    return counters


def _flatten(artifact: dict) -> dict:
    """Per-scale gated counters: ``{scale: {mode.counter: value}}``.

    Schema 2 artifacts carry a ``runs`` map with one totals dict per
    scale; schema 1 artifacts carry a single top-level ``totals`` keyed
    by their one ``scale``.
    """
    runs = artifact.get("runs")
    if isinstance(runs, dict) and runs:
        return {scale: _flatten_totals(run.get("totals", {}))
                for scale, run in runs.items()}
    return {_scale_key(artifact.get("scale")): _flatten_totals(artifact.get("totals", {}))}


def _growth(per_scale: dict) -> dict:
    """Counter growth from the smallest to the largest recorded scale.

    Returns ``{}`` for single-scale data (no trendline to measure).
    Growth is the plain ratio ``counter(max scale) / counter(min scale)``
    — both sides run the identical corpus generator, so comparing an
    artifact's ratio with the baseline's detects *scaling-curve* changes
    independent of the absolute level.
    """
    if len(per_scale) < 2:
        return {}
    ordered = sorted(per_scale, key=float)
    low, high = per_scale[ordered[0]], per_scale[ordered[-1]]
    growth = {}
    for name, low_value in low.items():
        high_value = high.get(name, 0)
        growth[name] = round(high_value / low_value, 4) if low_value else 0.0
    return growth


def _check_proof_store(path: pathlib.Path) -> list:
    """Gate the proof-store artifact's warm-run I/O comparison, if present.

    Returns failure strings; an absent artifact is a skip (with a note),
    not a failure — the proof-store benchmark is optional in local runs.
    """
    if not path.exists():
        print(f"proof-store gate skipped: no artifact at {path} "
              f"(run bench_proof_store.py to produce one)")
        return []
    summary = json.loads(path.read_text()).get("summary", {})
    sqlite_io = int(summary.get("warm_sqlite_io_bytes", 0))
    json_io = int(summary.get("warm_json_io_bytes", 0))
    lazy = int(summary.get("warm_sqlite_lazy_loads", 0))
    entries = int(summary.get("warm_sqlite_entries", 0))
    print(f"proof store: warm sqlite I/O {sqlite_io} bytes vs json {json_io} "
          f"bytes; {lazy}/{entries} entries faulted")
    failures = []
    if sqlite_io >= json_io:
        failures.append(
            f"proof store: warm sqlite store I/O ({sqlite_io} bytes) is not "
            f"below warm json ({json_io} bytes) — lazy faulting regressed")
    if entries and lazy >= entries:
        failures.append(
            f"proof store: warm sqlite run faulted {lazy} of {entries} stored "
            f"entries — the warm sweep should touch strictly fewer")
    return failures


def _check_incremental(path: pathlib.Path, expected_seed,
                       min_saved_pct: float = 70.0) -> list:
    """Gate the incremental-revalidation artifact, if present.

    Incremental revalidation after the canonical suffix tweak must do at
    least ``min_saved_pct`` percent fewer rule invocations AND fewer
    node builds than a cold re-run (summed over all corpora), with
    records signature-identical to cold.  Returns failure strings; an
    absent artifact is a skip (with a note), not a failure — the
    incremental benchmark is optional in local runs.
    """
    if not path.exists():
        print(f"incremental gate skipped: no artifact at {path} "
              f"(run bench_incremental.py to produce one)")
        return []
    artifact = json.loads(path.read_text())
    failures = []
    if expected_seed is not None and artifact.get("hash_seed") != expected_seed:
        failures.append(
            f"incremental: artifact hash_seed {artifact.get('hash_seed')!r} "
            f"does not match chain baseline hash_seed {expected_seed!r}")
        return failures
    savings = artifact.get("savings", {})
    reuse = artifact.get("reuse", {})
    rules_saved = float(savings.get("rule_invocations_saved_pct", 0.0))
    nodes_saved = float(savings.get("nodes_built_saved_pct", 0.0))
    print(f"incremental: rule invocations saved {rules_saved}%, node builds "
          f"saved {nodes_saved}% (floor {min_saved_pct:g}%); "
          f"{reuse.get('pairs_skipped_unchanged', 0)} pairs adopted, "
          f"{reuse.get('subgraph_nodes_reused', 0)} nodes reused")
    if not artifact.get("identical", False):
        failures.append(
            "incremental: records are NOT signature-identical to the cold "
            "re-run (see the artifact's per-row mismatches)")
    if rules_saved < min_saved_pct:
        failures.append(
            f"incremental: rule invocations saved {rules_saved}% "
            f"< {min_saved_pct:g}% floor — dirty-suffix reuse regressed")
    if nodes_saved < min_saved_pct:
        failures.append(
            f"incremental: node builds saved {nodes_saved}% "
            f"< {min_saved_pct:g}% floor — retained-graph reuse regressed")
    return failures


def _check_remote_steal(path: pathlib.Path,
                        max_overhead: float = 1.15) -> list:
    """Gate the steal-transport artifact's overhead summary, if present.

    The TCP transport may reorder the schedule but not the work: its
    total validated-query count must stay within ``max_overhead`` of the
    pipe transport's.  And the warm served-store leg must have amortized
    its round trips — at most one get RPC per work batch, with the
    batched-prefetch path actually exercised.  Returns failure strings;
    an absent artifact is a skip (with a note), not a failure — the
    remote-steal benchmark is optional in local runs.
    """
    if not path.exists():
        print(f"remote-steal gate skipped: no artifact at {path} "
              f"(run bench_remote_steal.py to produce one)")
        return []
    summary = json.loads(path.read_text()).get("summary", {})
    pipe_queries = int(summary.get("pipe_queries", 0))
    tcp_queries = int(summary.get("tcp_queries", 0))
    batches = int(summary.get("warm_batches", 0))
    get_rpcs = int(summary.get("warm_get_rpcs", 0))
    batched_gets = int(summary.get("warm_batched_gets", 0))
    print(f"remote steal: tcp {tcp_queries} queries vs pipe {pipe_queries} "
          f"(cap x{max_overhead:g}); warm store {get_rpcs} get RPCs over "
          f"{batches} work batches ({batched_gets} batched gets)")
    failures = []
    if pipe_queries and tcp_queries > max_overhead * pipe_queries:
        failures.append(
            f"remote steal: tcp transport answered {tcp_queries} queries vs "
            f"pipe {pipe_queries} (> x{max_overhead:g}) — going cross-host "
            f"is repeating work")
    if get_rpcs > batches:
        failures.append(
            f"remote steal: warm served-store runs issued {get_rpcs} get "
            f"RPCs over {batches} work batches — planning-time prefetch "
            f"must batch to at most one RPC per batch")
    if batches and not batched_gets:
        failures.append(
            "remote steal: warm served-store runs never exercised a "
            "batched get — the prefetch path regressed to per-key chatter")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/chain_graphs.json"),
                        help="chain_graphs artifact to check")
    parser.add_argument("--proof-store-artifact", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/proof_store.json"),
                        help="proof-store artifact to gate when present "
                             "(see bench_proof_store.py)")
    parser.add_argument("--incremental-artifact", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/incremental.json"),
                        help="incremental-revalidation artifact to gate when "
                             "present (see bench_incremental.py)")
    parser.add_argument("--remote-steal-artifact", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/remote_steal.json"),
                        help="steal-transport artifact to gate when present "
                             "(see bench_remote_steal.py)")
    parser.add_argument("--remote-steal-max-overhead", type=float,
                        default=1.15,
                        help="maximum ratio of tcp to pipe total validated "
                             "queries (default 1.15)")
    parser.add_argument("--incremental-min-saved", type=float, default=70.0,
                        help="minimum percent of rule invocations AND node "
                             "builds incremental revalidation must save vs "
                             "cold (default 70)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/perf_baseline.json"),
                        help="committed counter baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression per counter per "
                             "scale (default 0.10 = 10%%)")
    parser.add_argument("--growth-tolerance", type=float, default=0.10,
                        help="allowed relative increase of the smallest-to-"
                             "largest-scale growth ratio (default 0.10)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the artifact and exit")
    args = parser.parse_args()

    artifact = json.loads(args.artifact.read_text())
    per_scale = _flatten(artifact)
    growth = _growth(per_scale)

    if args.update_baseline:
        payload = {
            "schema": 2,
            "scales": sorted(per_scale, key=float),
            "hash_seed": artifact.get("hash_seed"),
            "counters": per_scale,
            "growth": growth,
        }
        args.baseline.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    if baseline.get("schema", 1) >= 2:
        baseline_per_scale = baseline.get("counters", {})
        baseline_growth = baseline.get("growth", {})
    else:
        baseline_per_scale = {_scale_key(baseline.get("scale")): baseline.get("counters", {})}
        baseline_growth = {}
    if sorted(per_scale, key=float) != sorted(baseline_per_scale, key=float):
        print(f"perf guard: artifact scales {sorted(per_scale, key=float)} do not "
              f"match baseline scales {sorted(baseline_per_scale, key=float)}",
              file=sys.stderr)
        return 1
    # Counters are only deterministic for a fixed hash seed (structural
    # signatures and φ-branch orderings vary with it), so a seed mismatch
    # would gate noise, not regressions.
    if artifact.get("hash_seed") != baseline.get("hash_seed"):
        print(f"perf guard: artifact hash_seed {artifact.get('hash_seed')!r} does not "
              f"match baseline hash_seed {baseline.get('hash_seed')!r}",
              file=sys.stderr)
        return 1

    failures = []
    for scale in sorted(baseline_per_scale, key=float):
        expected_counters = baseline_per_scale[scale]
        actual_counters = per_scale.get(scale, {})
        if not expected_counters:
            continue
        width = max(len(name) for name in expected_counters)
        print(f"scale {scale}:")
        for name, expected in sorted(expected_counters.items()):
            actual = actual_counters.get(name)
            if actual is None:
                failures.append(f"scale {scale} {name}: missing from artifact")
                continue
            if expected == 0:
                delta = 0.0 if actual == 0 else float("inf")
            else:
                delta = (actual - expected) / expected
            marker = "REGRESSION" if delta > args.tolerance else (
                "improved" if delta < 0 else "ok")
            print(f"  {name:<{width}}  baseline={expected:>9d}  actual={actual:>9d}  "
                  f"{delta:+7.1%}  {marker}")
            if delta > args.tolerance:
                failures.append(
                    f"scale {scale} {name}: {actual} vs baseline {expected} "
                    f"({delta:+.1%} > {args.tolerance:.0%} tolerance)")

    if baseline_growth and growth:
        scales = sorted(per_scale, key=float)
        width = max(len(name) for name in baseline_growth)
        print(f"growth (scale {scales[0]} -> {scales[-1]}):")
        for name, expected in sorted(baseline_growth.items()):
            actual = growth.get(name)
            if actual is None:
                failures.append(f"growth {name}: missing from artifact")
                continue
            if expected == 0:
                delta = 0.0 if actual == 0 else float("inf")
            else:
                delta = (actual - expected) / expected
            marker = "SUPER-LINEAR" if delta > args.growth_tolerance else (
                "improved" if delta < 0 else "ok")
            print(f"  {name:<{width}}  baseline=x{expected:<8.3f}  actual=x{actual:<8.3f}  "
                  f"{delta:+7.1%}  {marker}")
            if delta > args.growth_tolerance:
                failures.append(
                    f"growth {name}: x{actual:.3f} vs baseline x{expected:.3f} "
                    f"({delta:+.1%} > {args.growth_tolerance:.0%} tolerance) — "
                    f"super-linear scaling regression")

    failures += _check_proof_store(args.proof_store_artifact)
    failures += _check_remote_steal(args.remote_steal_artifact,
                                    args.remote_steal_max_overhead)
    failures += _check_incremental(args.incremental_artifact,
                                   baseline.get("hash_seed"),
                                   args.incremental_min_saved)

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    trend = " and growth trendline" if baseline_growth else ""
    print(f"\nperf guard OK: every counter within {args.tolerance:.0%} of "
          f"baseline{trend} at every scale")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
