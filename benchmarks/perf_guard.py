#!/usr/bin/env python3
"""CI perf guard: gate deterministic work counters against a committed baseline.

Validation work is deterministic for a fixed corpus, configuration and
``PYTHONHASHSEED``: the number of graph nodes constructed, normalization
rule invocations and equivalence (normalize) runs of a sweep never vary
between runs — only wall-clock does.  That makes them gateable: this
script compares the counters of a freshly produced
``benchmarks/artifacts/chain_graphs.json`` artifact (see
``bench_chain_graphs.py``, which pins ``PYTHONHASHSEED=0``) against the
committed ``benchmarks/perf_baseline.json`` and fails when any counter
regressed by more than ``--tolerance`` (default 10%).  Improvements are
reported but never fail the guard; refresh the baseline with
``--update-baseline`` after an intentional perf change and commit it.

Run with::

    PYTHONPATH=src python benchmarks/bench_chain_graphs.py --scale 0.2
    PYTHONPATH=src python benchmarks/perf_guard.py
"""

import argparse
import json
import pathlib
import sys

#: Counters gated by the guard, read from the artifact's chain-mode totals
#: (the default execution mode) — plus the per-pair totals, so a
#: regression on the fallback/oracle path is caught too.
GATED_MODES = ("chain", "per_pair")
GATED_COUNTERS = ("nodes_built", "nodes_created", "rule_invocations",
                  "normalize_runs")


def _flatten(artifact: dict) -> dict:
    """Extract the gated counters from a chain_graphs artifact."""
    counters = {}
    totals = artifact.get("totals", {})
    for mode in GATED_MODES:
        for key in GATED_COUNTERS:
            counters[f"{mode}.{key}"] = int(totals.get(mode, {}).get(key, 0))
    return counters


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/chain_graphs.json"),
                        help="chain_graphs artifact to check")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/perf_baseline.json"),
                        help="committed counter baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression (default 0.10 = 10%%)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the artifact and exit")
    args = parser.parse_args()

    artifact = json.loads(args.artifact.read_text())
    counters = _flatten(artifact)

    if args.update_baseline:
        payload = {
            "schema": 1,
            "scale": artifact.get("scale"),
            "hash_seed": artifact.get("hash_seed"),
            "counters": counters,
        }
        args.baseline.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    baseline_counters = baseline.get("counters", {})
    if artifact.get("scale") != baseline.get("scale"):
        print(f"perf guard: artifact scale {artifact.get('scale')} does not match "
              f"baseline scale {baseline.get('scale')}", file=sys.stderr)
        return 1
    # Counters are only deterministic for a fixed hash seed (structural
    # signatures and φ-branch orderings vary with it), so a seed mismatch
    # would gate noise, not regressions.
    if artifact.get("hash_seed") != baseline.get("hash_seed"):
        print(f"perf guard: artifact hash_seed {artifact.get('hash_seed')!r} does not "
              f"match baseline hash_seed {baseline.get('hash_seed')!r}",
              file=sys.stderr)
        return 1

    failures = []
    width = max(len(name) for name in baseline_counters) if baseline_counters else 0
    for name, expected in sorted(baseline_counters.items()):
        actual = counters.get(name)
        if actual is None:
            failures.append(f"{name}: missing from artifact")
            continue
        if expected == 0:
            delta = 0.0 if actual == 0 else float("inf")
        else:
            delta = (actual - expected) / expected
        marker = "REGRESSION" if delta > args.tolerance else (
            "improved" if delta < 0 else "ok")
        print(f"  {name:<{width}}  baseline={expected:>9d}  actual={actual:>9d}  "
              f"{delta:+7.1%}  {marker}")
        if delta > args.tolerance:
            failures.append(
                f"{name}: {actual} vs baseline {expected} "
                f"({delta:+.1%} > {args.tolerance:.0%} tolerance)")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nperf guard OK: every counter within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
