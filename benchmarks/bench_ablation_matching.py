"""§5.4 — cycle-matching ablation: simple unification vs partition refinement.

The paper found the two algorithms give roughly the same validation rate,
and that running the simple matcher with partitioning as a fallback
("combined") is marginally better than either alone.
"""

from repro.bench import format_grouped_bars, matching_ablation


def test_matching_strategy_ablation(benchmark, bench_scale):
    results = benchmark.pedantic(
        matching_ablation,
        kwargs={"scale": bench_scale, "benchmarks": ["sqlite", "bzip2", "lbm", "mcf"]},
        iterations=1, rounds=1,
    )
    print()
    print(format_grouped_bars(results, title="Matcher ablation (validation rate)"))

    def average(matcher):
        return sum(results[matcher].values()) / len(results[matcher])

    # The combined strategy is at least as good as either algorithm alone.
    assert average("combined") >= average("simple") - 1e-9
    assert average("combined") >= average("partition") - 1e-9
