#!/usr/bin/env python3
"""Service guard: the daemon must reproduce the batch driver exactly.

Starts a real ``python -m repro.validator.service`` subprocess, submits
every paper corpus through the blocking client, and enforces the
acceptance criteria of the validation-as-a-service layer:

* **Record parity** — for each corpus, the record signatures streamed by
  the daemon must be byte-identical (as JSON) to what
  :func:`repro.validator.driver.validate_module_batch` computes
  in-process for the same module and pipeline.
* **Warm reuse** — an identical second submission of every corpus must
  answer at least ``--min-hit-rate`` (default 0.95) of its queries from
  the shared cache.
* **Admission control** — a daemon started with ``--max-inflight 0``
  must reject a request with 503 + ``Retry-After`` (the deterministic
  reject-everything configuration).
* **Graceful drain** — ``SIGTERM`` must exit 0 after flushing the
  persistent cache to disk.

Every run writes a JSON artifact (``--out``) with the per-corpus parity
and hit-rate rows.

Run with::

    PYTHONPATH=src python benchmarks/service_guard.py \
        [--scale 0.1] [--out benchmarks/artifacts/service_guard.json]
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

from repro.bench.corpus import BENCHMARKS_BY_NAME, PAPER_BENCHMARKS, build_corpus
from repro.transforms.pass_manager import PAPER_PIPELINE
from repro.validator import DEFAULT_CONFIG, validate_module_batch
from repro.validator.service import ServiceBusy, ValidationClient


def _spawn_daemon(extra_args, cache_dir=None):
    """Start a daemon subprocess; return (proc, port)."""
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    command = [sys.executable, "-m", "repro.validator.service", "--port", "0"]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    command += extra_args
    proc = subprocess.Popen(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"daemon did not announce a port: {line!r}")
    return proc, int(match.group(1))


def _reference_signatures(name, scale):
    module = build_corpus(BENCHMARKS_BY_NAME[name], scale)
    results = validate_module_batch([module], PAPER_PIPELINE, DEFAULT_CONFIG,
                                    strategy="stepwise")
    return [json.loads(json.dumps(record.signature()))
            for record in results[0][1].records]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (default 0.1: tiny, CI-friendly)")
    parser.add_argument("--min-hit-rate", type=float, default=0.95,
                        help="minimum warm-repeat cache-hit rate")
    parser.add_argument("--corpora", nargs="*", default=None,
                        help="corpus subset (default: all twelve)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(
                            "benchmarks/artifacts/service_guard.json"))
    args = parser.parse_args()

    names = args.corpora or [spec.name for spec in PAPER_BENCHMARKS]
    failures = []
    rows = []

    import tempfile
    with tempfile.TemporaryDirectory() as cache_dir:
        proc, port = _spawn_daemon(["--max-inflight", "4"],
                                   cache_dir=cache_dir)
        try:
            client = ValidationClient(port=port)
            for name in names:
                started = time.monotonic()
                cold = client.validate(corpus=name, scale=args.scale,
                                       label=name)
                streamed = [record["signature"]
                            for record in cold["records"]]
                reference = _reference_signatures(name, args.scale)
                parity = streamed == reference
                if not parity:
                    failures.append(f"{name}: daemon records diverge from "
                                    f"validate_module_batch")
                warm = client.validate(corpus=name, scale=args.scale,
                                       label=name)
                hit_rate = warm["summary"]["cache"]["hit_rate"]
                if hit_rate < args.min_hit_rate:
                    failures.append(
                        f"{name}: warm hit rate {hit_rate:.1%} < "
                        f"{args.min_hit_rate:.1%}")
                rows.append({"corpus": name, "functions": len(streamed),
                             "parity": parity, "warm_hit_rate": hit_rate,
                             "elapsed": time.monotonic() - started})
                print(f"{name:14s} functions={len(streamed):3d} "
                      f"parity={'ok' if parity else 'FAIL'} "
                      f"warm_hits={hit_rate:.1%}")
            stats = client.stats()
            print(f"daemon: requests={stats['requests_total']} "
                  f"revalidations={stats['revalidations']} "
                  f"cache_hits={stats['cache'].get('hits', 0)}")
        finally:
            # Graceful-drain criterion: SIGTERM must flush and exit 0.
            proc.send_signal(signal.SIGTERM)
            try:
                exit_code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                exit_code = proc.wait()
                failures.append("daemon did not drain within 60s of SIGTERM")
        if exit_code != 0:
            failures.append(f"daemon exited {exit_code} on SIGTERM")
        cache_files = os.listdir(cache_dir)
        if not cache_files:
            failures.append("drain did not persist the proof cache")
        print(f"SIGTERM drain: exit={exit_code} cache={cache_files}")

    # Admission-control criterion: --max-inflight 0 rejects everything.
    proc, port = _spawn_daemon(["--max-inflight", "0"])
    try:
        client = ValidationClient(port=port)
        try:
            client.validate(corpus=names[0], scale=args.scale)
            failures.append("max_inflight=0 daemon accepted a request")
            rejected = False
        except ServiceBusy as exc:
            rejected = True
            print(f"queue-full rejection: 503, retry_after={exc.retry_after}")
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 1, "scale": args.scale,
               "min_hit_rate": args.min_hit_rate, "rows": rows,
               "sigterm_exit": exit_code, "queue_full_rejected": rejected,
               "failures": failures}
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {len(rows)} corpora, parity + warm reuse + rejection + drain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
