#!/usr/bin/env python3
"""Steal-transport comparison: pipe vs TCP, plus served-store RPC costs.

Runs the ``steal`` scheduling backend over all twelve paper corpora
twice — once per transport (``pipe``: the in-process fork/pipe pool,
``tcp``: the loopback coordinator with remote worker subprocesses) —
and records the deterministic work counters side by side: validated
queries (``distinct_pairs``), pooled items and wall-clock.  Records are
parity-checked elsewhere (``remote_steal_guard.py``); this artifact
exists to bound the *overhead* of going cross-host:

* the TCP transport must not answer meaningfully more queries than the
  pipe transport (the schedule may differ, the work may not) — the perf
  guard gates ``tcp_queries <= 1.15 x pipe_queries``;
* a warm driver consulting the served proof store over
  ``config.steal_connect`` must amortize its round trips: planning
  issues **at most one get RPC per work batch** (one
  ``validate_module_batch`` call), answered by batched planning-time
  prefetch, never per-key chatter.

``benchmarks/perf_guard.py`` gates exactly those from this artifact
(and skips the gate with a note when the artifact is absent).

Run with::

    PYTHONPATH=src python benchmarks/bench_remote_steal.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import pathlib
import socket
import tempfile
import time
from dataclasses import replace

from repro.bench import format_table
from repro.bench.corpus import PAPER_BENCHMARKS, build_corpus
from repro.transforms import PAPER_PIPELINE
from repro.validator import faults
from repro.validator.cache import REMOTE_PREFIX, ValidationCache
from repro.validator.config import DEFAULT_CONFIG
from repro.validator.driver import validate_module_batch
from repro.validator.scheduler.remote import ServedStore, spawn_workers
from repro.validator.scheduler.transport import TcpStealPool

WORKERS = 2

TABLE_COLUMNS = ("benchmark", "transport", "distinct_pairs", "pooled_pairs",
                 "items_stolen", "workers_joined", "time_s")


def probe_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def run_one(module, config, cache=None):
    faults.reset()
    start = time.perf_counter()
    [(_, report)] = validate_module_batch(
        [module], PAPER_PIPELINE, config=config, cache=cache,
        strategy="stepwise")
    return report.shard_stats or {}, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: the guard scale)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(
                            "benchmarks/artifacts/remote_steal.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    steal_address = f"127.0.0.1:{probe_port()}"
    worker_procs = spawn_workers(steal_address, WORKERS, reconnect=True,
                                 patience=900.0)
    store_dir = tempfile.TemporaryDirectory(prefix="repro-remote-bench-")
    store_pool = TcpStealPool(
        1, None, listen="127.0.0.1:0",
        store=ServedStore(store_dir.name, backend="sqlite"))
    store_address = f"{store_pool.address[0]}:{store_pool.address[1]}"

    transports = {
        "pipe": replace(DEFAULT_CONFIG, executor="steal",
                        concurrency=WORKERS),
        "tcp": replace(DEFAULT_CONFIG, executor="steal",
                       concurrency=WORKERS, steal_transport="tcp",
                       steal_listen=steal_address),
    }
    store_config = replace(DEFAULT_CONFIG, steal_connect=store_address)

    rows = []
    totals = {name: {"distinct_pairs": 0, "pooled_pairs": 0, "time_s": 0.0}
              for name in transports}
    warm_get_rpcs = warm_batched_gets = warm_batches = warm_revalidated = 0
    try:
        for spec in PAPER_BENCHMARKS:
            module = build_corpus(spec, args.scale)
            for name, config in transports.items():
                shard, elapsed = run_one(module, config)
                totals[name]["distinct_pairs"] += shard.get(
                    "distinct_pairs", 0)
                totals[name]["pooled_pairs"] += shard.get("pooled_pairs", 0)
                totals[name]["time_s"] += elapsed
                rows.append({
                    "benchmark": spec.name,
                    "transport": name,
                    "distinct_pairs": shard.get("distinct_pairs", 0),
                    "pooled_pairs": shard.get("pooled_pairs", 0),
                    "items_stolen": shard.get("items_stolen", 0),
                    "workers_joined": shard.get("remote_workers_joined", 0),
                    "time_s": round(elapsed, 3),
                })
            # Served-store amortization: cold populates, warm must answer
            # from at most one batched get RPC for the whole batch.
            run_one(module, store_config)
            warm_cache = ValidationCache(f"{REMOTE_PREFIX}{store_address}")
            warm_shard, _ = run_one(module, store_config, warm_cache)
            warm_stats = warm_cache.stats()
            warm_batches += 1
            warm_get_rpcs += warm_stats.get("store_get_rpcs", 0)
            warm_batched_gets += warm_stats.get("store_batched_gets", 0)
            warm_revalidated += warm_shard.get("distinct_pairs", 0)
    finally:
        for proc in worker_procs:
            proc.terminate()
        for proc in worker_procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()
        store_pool.close()
        store_dir.cleanup()

    print(format_table([{k: row[k] for k in TABLE_COLUMNS} for row in rows],
                       title=f"Steal transports: pipe vs tcp "
                             f"(scale {args.scale}, {WORKERS} workers)"))

    pipe_queries = totals["pipe"]["distinct_pairs"]
    tcp_queries = totals["tcp"]["distinct_pairs"]
    summary = {
        "pipe_queries": pipe_queries,
        "tcp_queries": tcp_queries,
        "tcp_overhead_ratio": round(tcp_queries / pipe_queries, 4)
            if pipe_queries else 0.0,
        "pipe_time_s": round(totals["pipe"]["time_s"], 3),
        "tcp_time_s": round(totals["tcp"]["time_s"], 3),
        "warm_batches": warm_batches,
        "warm_get_rpcs": warm_get_rpcs,
        "warm_batched_gets": warm_batched_gets,
        "warm_revalidated_pairs": warm_revalidated,
    }
    print(f"total queries: tcp {tcp_queries} vs pipe {pipe_queries} "
          f"(x{summary['tcp_overhead_ratio']}); warm served store answered "
          f"{warm_batches} work batches in {warm_get_rpcs} get RPCs "
          f"({warm_batched_gets} batched gets, "
          f"{warm_revalidated} pairs re-validated)")

    payload = {"schema": 1, "scale": args.scale, "workers": WORKERS,
               "rows": rows, "totals": totals, "summary": summary}
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
