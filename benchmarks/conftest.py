"""Shared configuration for the pytest-benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced corpus scale (so the whole suite runs in a couple of minutes) and
prints the resulting table/chart once, so running::

    pytest benchmarks/ --benchmark-only -s

both times the experiments and shows the reproduced numbers next to the
paper's.  Set ``REPRO_BENCH_SCALE`` to change the corpus scale (default
0.25; 1.0 reproduces the full-size corpora).
"""

import os

import pytest

#: Corpus scale used by all benchmarks (fraction of the full corpus size).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Benchmark subset used by the heavier experiments (full set at scale 1.0
#: would take several minutes per figure under pytest-benchmark's rounds).
FAST_BENCHMARKS = ("sqlite", "bzip2", "hmmer", "lbm", "mcf", "sjeng")


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


@pytest.fixture(scope="session")
def fast_benchmarks():
    return list(FAST_BENCHMARKS)


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["repro_bench_scale"] = SCALE
