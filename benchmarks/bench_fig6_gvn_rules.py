"""Figure 6 — effect of the rewrite-rule groups on validating GVN."""

from repro.bench import figure6, format_grouped_bars


def test_figure6_gvn_rule_ablation(benchmark, bench_scale, fast_benchmarks):
    results = benchmark.pedantic(
        figure6, kwargs={"scale": bench_scale, "benchmarks": fast_benchmarks},
        iterations=1, rounds=1,
    )
    print()
    print(format_grouped_bars(results, title="Figure 6 — GVN validation rate per rule set"))
    labels = list(results)
    # Adding rule groups never hurts, and the full rule set beats "no rules"
    # (the paper reports ~50% with no rules, rising substantially).
    for bench in fast_benchmarks:
        assert results[labels[-1]][bench] >= results[labels[0]][bench]
    first_avg = sum(results[labels[0]].values()) / len(fast_benchmarks)
    last_avg = sum(results[labels[-1]].values()) / len(fast_benchmarks)
    assert last_avg >= first_avg
