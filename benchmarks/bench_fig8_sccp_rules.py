"""Figure 8 — effect of the rewrite rules on validating SCCP."""

from repro.bench import figure8, format_grouped_bars


def test_figure8_sccp_rule_ablation(benchmark, bench_scale, fast_benchmarks):
    results = benchmark.pedantic(
        figure8, kwargs={"scale": bench_scale, "benchmarks": fast_benchmarks},
        iterations=1, rounds=1,
    )
    print()
    print(format_grouped_bars(results, title="Figure 8 — SCCP validation rate per rule set"))
    labels = list(results)
    averages = {label: sum(values.values()) / len(values) for label, values in results.items()}
    # With no rules the results are poor; constant folding gives a big jump;
    # φ simplification and the rest close most of the remaining gap.
    assert averages[labels[0]] <= averages[labels[1]] + 1e-9
    assert averages["all rules"] >= averages[labels[0]]
    assert averages["all rules"] >= 60.0
