"""Extension experiment — stepwise pipeline validation vs the paper's whole query.

The paper validates each function once against the output of the *whole*
pipeline (§2), so a rejection discards every optimization and cannot name
the offending pass.  This benchmark times the three driver strategies
(whole / stepwise / bisect) across a corpus subset and records their
verdicts, kept-prefix salvage, blame histograms and the shared analysis
cache's computed/reused counters into a JSON artifact
(``benchmarks/artifacts/stepwise_strategies.json`` by default; override
the directory with ``REPRO_BENCH_ARTIFACT_DIR``.  The CI guard
``benchmarks/stepwise_guard.py`` owns the separate
``stepwise_comparison.json`` artifact — distinct files, so neither run
clobbers the other's schema).

The assertions mirror the CI strategy-regression guard
(``benchmarks/stepwise_guard.py``): stepwise must accept a superset of
whole's functions and the analysis cache must actually remove recomputation.
"""

import json
import os
import pathlib

from repro.bench import format_table, stepwise_comparison

#: Benchmarks measured by this file (a light subset spanning the corpus
#: personalities; the guard script covers all twelve at tiny scale).
STEPWISE_BENCHMARKS = ["sqlite", "bzip2", "hmmer", "mcf"]


def _artifact_path() -> pathlib.Path:
    directory = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
    if directory:
        base = pathlib.Path(directory)
    else:
        base = pathlib.Path(__file__).resolve().parent / "artifacts"
    base.mkdir(parents=True, exist_ok=True)
    return base / "stepwise_strategies.json"


def write_artifact(scale: float, rows) -> pathlib.Path:
    """Persist the run's stats so future PRs can diff the strategy trajectory."""
    path = _artifact_path()
    payload = {
        "schema": 1,
        "scale": scale,
        "benchmarks": STEPWISE_BENCHMARKS,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_stepwise_strategy_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(
        stepwise_comparison,
        kwargs={"scale": bench_scale, "benchmarks": STEPWISE_BENCHMARKS},
        iterations=1, rounds=1,
    )
    artifact = write_artifact(bench_scale, rows)
    columns = ("benchmark", "transformed", "whole_validated", "stepwise_validated",
               "bisect_validated", "stepwise_partial", "stepwise_prefix_steps",
               "whole_time_s", "stepwise_time_s", "bisect_time_s",
               "analyses_computed", "analyses_reused")
    print()
    print(format_table([{k: row[k] for k in columns} for row in rows],
                       title=f"Validation strategies (corpus scale {bench_scale})"))
    print(f"stats artifact: {artifact}")
    for row in rows:
        assert row["superset_ok"], row["superset_violations"]
        # Interior checkpoints are analysed once and consumed twice, so a
        # corpus with any multi-step function must show analysis reuse.
        if row["multi_step_functions"]:
            assert row["analyses_reused"] > 0, row
