#!/usr/bin/env python3
"""Blame-driven rule triage: which passes do the normalizer's rules fail on?

Aggregates per-pass blame histograms — how often the stepwise/bisect
strategies blamed each pass for a rejection — across corpus-sweep
artifacts (any JSON whose rows carry a ``"blame"`` mapping, e.g.
``benchmarks/artifacts/stepwise_comparison.json``) and prints the top
offending passes.  With ``--sweep`` (the default when no artifacts are
given or none contain blame data) it additionally runs a fresh stepwise
sweep over the corpora to collect *sample rejected functions* per blamed
pass, which is what turns a histogram into an actionable rule-writing
worklist: pick the top pass, open its samples, grow targeted rewrite
rules (ROADMAP: "blame-driven rule triage").

Run with::

    PYTHONPATH=src python benchmarks/blame_triage.py benchmarks/artifacts/*.json
    PYTHONPATH=src python benchmarks/blame_triage.py --sweep --scale 0.2
"""

import argparse
import json
import pathlib
import sys
from typing import Dict, List

from repro.bench import ALL_BENCHMARKS, BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.validator import DEFAULT_CONFIG, llvm_md


def harvest_artifacts(paths: List[pathlib.Path]) -> Dict[str, int]:
    """Sum every ``"blame"`` histogram found in the given artifact files.

    Rows are discovered recursively (artifacts nest rows under different
    keys); unreadable or non-JSON files are skipped with a warning rather
    than aborting a triage over a partially populated artifact directory.
    """
    histogram: Dict[str, int] = {}

    def visit(node) -> None:
        if isinstance(node, dict):
            blame = node.get("blame")
            if isinstance(blame, dict):
                for pass_name, count in blame.items():
                    if isinstance(count, int):
                        histogram[pass_name] = histogram.get(pass_name, 0) + count
            for value in node.values():
                visit(value)
        elif isinstance(node, list):
            for value in node:
                visit(value)

    for path in paths:
        try:
            visit(json.loads(path.read_text()))
        except (OSError, ValueError) as error:
            print(f"skipping {path}: {error}", file=sys.stderr)
    return histogram


def sweep(scale: float, benchmarks: List[str],
          samples_per_pass: int) -> Dict[str, Dict[str, object]]:
    """Stepwise-sweep the corpora; returns blame counts + sample functions."""
    triage: Dict[str, Dict[str, object]] = {}
    for name in benchmarks:
        module = build_corpus(BENCHMARKS_BY_NAME[name], scale)
        _, report = llvm_md(module, config=DEFAULT_CONFIG, label=name,
                            strategy="stepwise")
        for record in report.records:
            if record.blamed_pass is None:
                continue
            entry = triage.setdefault(record.blamed_pass,
                                      {"count": 0, "samples": []})
            entry["count"] += 1
            samples: List[str] = entry["samples"]
            if len(samples) < samples_per_pass:
                reason = record.result.reason if record.result is not None else "?"
                samples.append(f"{name}/@{record.name} ({reason}, "
                               f"kept {record.kept_prefix}/{record.changed_steps})")
    return triage


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*", type=pathlib.Path,
                        help="sweep artifacts to harvest blame histograms from")
    parser.add_argument("--sweep", action="store_true",
                        help="run a fresh stepwise sweep for sample functions "
                             "(implied when no artifacts yield blame data)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale for --sweep (default 0.2)")
    parser.add_argument("--top", type=int, default=10,
                        help="show at most this many passes (default 10)")
    parser.add_argument("--samples", type=int, default=3,
                        help="sample rejected functions per pass (default 3)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="optionally write the aggregated triage as JSON")
    args = parser.parse_args()

    histogram = harvest_artifacts(args.artifacts) if args.artifacts else {}
    triage: Dict[str, Dict[str, object]] = {
        name: {"count": count, "samples": []}
        for name, count in histogram.items()
    }
    if args.sweep or not triage:
        for pass_name, entry in sweep(args.scale, list(ALL_BENCHMARKS),
                                      args.samples).items():
            merged = triage.get(pass_name)
            if merged is None:
                # Not in the harvested histogram: the sweep's count is the
                # only one there is.
                triage[pass_name] = dict(entry)
            else:
                # The artifacts already count these rejections (they were
                # produced by the same kind of sweep), so the fresh sweep
                # only contributes the sample functions — adding its count
                # on top would double-count every blame.
                merged["samples"] = entry["samples"]

    if not triage:
        print("no blame data found (clean sweeps reject nothing)")
        return 0

    ranked = sorted(triage.items(), key=lambda item: (-int(item[1]["count"]), item[0]))
    rows = [{
        "pass": pass_name,
        "blamed": entry["count"],
        "sample rejected functions": "; ".join(entry["samples"]) or "-",
    } for pass_name, entry in ranked[:args.top]]
    print(format_table(rows, title="Blame-driven rule triage (most-blamed passes)"))
    print("\nNext step (ROADMAP 'blame-driven rule triage'): take the top pass,")
    print("reproduce its samples with validate(), and grow targeted rewrite rules.")

    if args.out is not None:
        payload = {"schema": 1,
                   "triage": {name: entry for name, entry in ranked}}
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"triage written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
