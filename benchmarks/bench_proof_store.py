#!/usr/bin/env python3
"""Proof-store I/O comparison: JSON vs SQLite backends, as a JSON artifact.

Runs the :func:`repro.bench.cache_persistence` experiment twice — once
per proof-store backend (``json``, ``sqlite``), each against its own
fresh cache directory — and records the cold and warm rows side by side:
wall-clock, store bytes read and written, entries faulted lazily
(``store_lazy_loads``), incremental flushes and the warm hit rate.

The interesting column is the warm run's I/O: the JSON backend re-reads
(and on save rewrites) the *whole* file no matter how few entries the
sweep touches, while the SQLite backend faults only the payloads the
planner actually peeks — so at any non-trivial corpus scale the warm
``sqlite`` row's total store I/O bytes must come in below the warm
``json`` row's.  ``benchmarks/perf_guard.py`` gates exactly that from
this artifact (and skips the gate with a note when the artifact is
absent).

Run with::

    PYTHONPATH=src python benchmarks/bench_proof_store.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import pathlib
import tempfile

from repro.bench import cache_persistence, format_table

#: Backends compared by the artifact, in presentation order.
BACKENDS = ("json", "sqlite")

#: Row fields carried into the per-backend tables.
TABLE_COLUMNS = ("run", "backend", "hit_rate", "entries", "disk_loaded",
                 "store_lazy_loads", "store_flushes", "store_bytes_read",
                 "store_bytes_written", "time_s")


def _io_bytes(row) -> int:
    """Total store traffic of one run: payload bytes read plus written."""
    return int(row["store_bytes_read"]) + int(row["store_bytes_written"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: the largest guard "
                             "scale, matching cache_guard.py)")
    parser.add_argument("--concurrency", type=int, default=2,
                        help="process-pool width for the sweeps")
    parser.add_argument("--strategy", default="stepwise",
                        help="validation strategy for the sweeps")
    parser.add_argument("--cache-root", type=pathlib.Path, default=None,
                        help="directory to hold one cache dir per backend "
                             "(default: a fresh temp dir, discarded after)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/proof_store.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    from dataclasses import replace

    from repro.validator import DEFAULT_CONFIG

    config = replace(DEFAULT_CONFIG, concurrency=args.concurrency)
    with tempfile.TemporaryDirectory(prefix="proof-store-") as scratch:
        root = args.cache_root or pathlib.Path(scratch)
        backends = {}
        for backend in BACKENDS:
            cache_dir = root / backend
            cache_dir.mkdir(parents=True, exist_ok=True)
            rows = cache_persistence(scale=args.scale, config=config,
                                     cache_dir=str(cache_dir),
                                     strategy=args.strategy,
                                     runs=("cold", "warm"),
                                     cache_backend=backend)
            backends[backend] = {row["run"]: row for row in rows}
            print(format_table([{k: row[k] for k in TABLE_COLUMNS}
                                for row in rows],
                               title=f"Proof store: {backend} backend "
                                     f"(scale {args.scale})"))
            print()

    warm_json = backends["json"]["warm"]
    warm_sqlite = backends["sqlite"]["warm"]
    summary = {
        "warm_json_io_bytes": _io_bytes(warm_json),
        "warm_sqlite_io_bytes": _io_bytes(warm_sqlite),
        "warm_sqlite_lazy_loads": int(warm_sqlite["store_lazy_loads"]),
        "warm_sqlite_entries": int(warm_sqlite["disk_loaded"]),
        "sqlite_io_smaller": _io_bytes(warm_sqlite) < _io_bytes(warm_json),
    }
    print(f"warm store I/O: sqlite {summary['warm_sqlite_io_bytes']} bytes vs "
          f"json {summary['warm_json_io_bytes']} bytes "
          f"({'sqlite smaller' if summary['sqlite_io_smaller'] else 'NOT smaller'}); "
          f"sqlite faulted {summary['warm_sqlite_lazy_loads']} of "
          f"{summary['warm_sqlite_entries']} stored entries")

    payload = {"schema": 1, "scale": args.scale, "strategy": args.strategy,
               "concurrency": args.concurrency, "backends": backends,
               "summary": summary}
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
