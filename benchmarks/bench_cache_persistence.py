"""Extension experiment — cold vs warm corpus sweeps with a persistent cache.

The paper's validator re-proves every pair on every run; with the
content-addressed :class:`~repro.validator.cache.ValidationCache` persisted
to disk, a repeated corpus sweep (CI re-runs, nightly regression jobs)
answers previously proved pairs without building a single value graph.
This benchmark times a cold sweep (empty cache directory) and a warm sweep
(same directory, fresh process-level cache object) over a corpus subset
and records both into a JSON artifact
(``benchmarks/artifacts/cache_persistence.json`` by default; override the
directory with ``REPRO_BENCH_ARTIFACT_DIR``).

The assertions mirror the CI cache guard (``benchmarks/cache_guard.py``):
the warm run must perform ≥95% fewer equivalence checks than the cold run
and reach a ≥95% cache-hit rate, with identical verdict counts.
"""

import json
import os
import pathlib
import tempfile

from repro.bench import cache_persistence, format_table

#: Benchmarks swept by this file (the guard script covers all twelve).
CACHE_BENCHMARKS = ["sqlite", "bzip2", "hmmer", "mcf"]


def _artifact_path() -> pathlib.Path:
    directory = os.environ.get("REPRO_BENCH_ARTIFACT_DIR")
    if directory:
        base = pathlib.Path(directory)
    else:
        base = pathlib.Path(__file__).resolve().parent / "artifacts"
    base.mkdir(parents=True, exist_ok=True)
    return base / "cache_persistence.json"


def write_artifact(scale: float, rows) -> pathlib.Path:
    """Persist the cold/warm stats so future PRs can diff the trajectory."""
    path = _artifact_path()
    payload = {
        "schema": 1,
        "scale": scale,
        "benchmarks": CACHE_BENCHMARKS,
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_cold_and_warm(scale: float):
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        return cache_persistence(scale=scale, benchmarks=CACHE_BENCHMARKS,
                                 cache_dir=cache_dir)


def test_cold_vs_warm_persistent_cache(benchmark, bench_scale):
    rows = benchmark.pedantic(run_cold_and_warm, kwargs={"scale": bench_scale},
                              iterations=1, rounds=1)
    artifact = write_artifact(bench_scale, rows)
    print()
    print(format_table(rows, title=f"Persistent cache cold vs warm (scale {bench_scale})"))
    print(f"stats artifact: {artifact}")

    cold = next(row for row in rows if row["run"] == "cold")
    warm = next(row for row in rows if row["run"] == "warm")
    assert cold["checks"] > 0
    # The acceptance criterion: a warm run performs >= 95% fewer
    # equivalence checks than the cold run it follows.
    assert warm["checks"] <= 0.05 * cold["checks"], (cold, warm)
    assert warm["hit_rate"] >= 0.95, warm
    # And verdicts are independent of where the answers came from.
    assert warm["validated"] == cold["validated"]
    assert warm["transformed"] == cold["transformed"]
