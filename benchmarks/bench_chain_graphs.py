#!/usr/bin/env python3
"""Chain-shared graphs vs the per-pair stepwise baseline, as a JSON artifact.

Runs the :func:`repro.bench.chain_comparison` experiment over all twelve
corpora: each corpus is swept twice with the stepwise strategy — once
with ``chain_graphs=False`` (one fresh two-version graph per adjacent
checkpoint pair) and once with ``chain_graphs=True`` (every checkpoint
chain hash-consed into ONE graph, normalized once) — and the artifact
records both modes' deterministic work counters (nodes built, nodes
created, rule invocations, normalize runs), the record-signature parity
verdict, and the aggregate savings percentages.

The experiment runs at **several corpus scales** (``--scales``, default
0.1/0.15/0.2) so the artifact carries a *trendline*, not a point: the
committed CI perf baseline (``benchmarks/perf_baseline.json``, enforced
by ``benchmarks/perf_guard.py``) gates both the absolute counters at
every scale and the counter *growth* between the smallest and largest
scale, catching super-linear scaling regressions that per-scale
tolerances would let through.

Counters are deterministic for a fixed ``PYTHONHASHSEED`` (structural
signatures hash strings, and φ-branch orderings follow them), so the
script re-executes itself with ``PYTHONHASHSEED=0`` unless the caller
already pinned one — artifacts and baselines are always comparable.

Run with::

    PYTHONPATH=src python benchmarks/bench_chain_graphs.py [--scales 0.1 0.15 0.2] [--out FILE]
"""

import argparse
import json
import os
import pathlib
import sys


from repro.bench import chain_comparison, format_table


def _ensure_pinned_hash_seed() -> None:
    """Re-exec under ``PYTHONHASHSEED=0`` so counters are reproducible.

    Only ever called from the ``__main__`` guard — the pytest benchmark
    harness imports every ``bench_*.py`` file, and an import-time exec
    would restart the whole collecting process.
    """
    if os.environ.get("PYTHONHASHSEED") is None:
        environment = dict(os.environ, PYTHONHASHSEED="0")
        os.execve(sys.executable, [sys.executable, *sys.argv], environment)

#: The counters the perf guard gates on (summed over all corpora).
COUNTER_KEYS = ("nodes_built", "nodes_created", "rule_invocations",
                "normalize_runs")


def _sweep_scale(scale: float):
    """Run the comparison at one scale; returns (rows, totals, savings, errors)."""
    rows = chain_comparison(scale=scale)
    totals = {"per_pair": {key: 0 for key in COUNTER_KEYS},
              "chain": {key: 0 for key in COUNTER_KEYS}}
    chains = fallbacks = 0
    parity_failures = []
    for row in rows:
        for key in COUNTER_KEYS:
            totals["per_pair"][key] += int(row[f"per_pair_{key}"])
            totals["chain"][key] += int(row[f"chain_{key}"])
        chains += int(row["chains"])
        fallbacks += int(row["chain_fallbacks"])
        if not row["identical"]:
            parity_failures.append(
                f"{row['benchmark']} (scale {scale}): {', '.join(row['mismatches'])}")
    savings = {}
    for key in COUNTER_KEYS:
        off_value = totals["per_pair"][key]
        on_value = totals["chain"][key]
        savings[f"{key}_saved_pct"] = round(
            100.0 * (1.0 - on_value / off_value), 1) if off_value else 0.0
    return rows, totals, savings, chains, fallbacks, parity_failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scales", type=float, nargs="+",
                        default=[0.1, 0.15, 0.2],
                        help="corpus scales for the trendline "
                             "(default: 0.1 0.15 0.2, CI-friendly)")
    parser.add_argument("--scale", type=float, default=None,
                        help="single-scale shorthand (overrides --scales)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/chain_graphs.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()
    scales = [args.scale] if args.scale is not None else sorted(args.scales)
    primary = scales[-1] if 0.2 not in scales else 0.2

    runs = {}
    parity_failures = []
    for scale in scales:
        rows, totals, savings, chains, fallbacks, failures = _sweep_scale(scale)
        parity_failures += failures
        runs[f"{scale:g}"] = {
            "scale": scale,
            "rows": rows,
            "totals": totals,
            "savings": savings,
            "chains": chains,
            "chain_fallbacks": fallbacks,
        }
        table_columns = ("benchmark", "transformed", "identical", "chains",
                         "per_pair_nodes_built", "chain_nodes_built",
                         "nodes_built_saved_pct",
                         "per_pair_rule_invocations", "chain_rule_invocations",
                         "rule_invocations_saved_pct")
        print(format_table([{k: row[k] for k in table_columns} for row in rows],
                           title=f"Chain-shared vs per-pair stepwise (scale {scale})"))
        print(f"overall savings at scale {scale}: "
              f"nodes built {savings['nodes_built_saved_pct']}%, "
              f"nodes created {savings['nodes_created_saved_pct']}%, "
              f"rule invocations {savings['rule_invocations_saved_pct']}%, "
              f"normalize runs {savings['normalize_runs_saved_pct']}%\n")

    primary_run = runs[f"{primary:g}"]
    payload = {
        "schema": 2,
        # Primary-scale fields keep the single-scale artifact shape alive
        # for consumers (and baselines) that predate the trendline.
        "scale": primary,
        "scales": [f"{scale:g}" for scale in scales],
        "hash_seed": os.environ.get("PYTHONHASHSEED"),
        "rows": primary_run["rows"],
        "totals": primary_run["totals"],
        "savings": primary_run["savings"],
        "chains": primary_run["chains"],
        "chain_fallbacks": primary_run["chain_fallbacks"],
        "runs": runs,
        "identical": not parity_failures,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")

    if parity_failures:
        print("\nCHAIN PARITY REGRESSION:", file=sys.stderr)
        for line in parity_failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    _ensure_pinned_hash_seed()
    raise SystemExit(main())
