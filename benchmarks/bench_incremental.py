#!/usr/bin/env python3
"""Incremental revalidation vs a cold re-run, as a JSON artifact.

Runs the :func:`repro.bench.incremental_comparison` experiment over all
twelve corpora: each corpus is validated cold under the *tweaked*
pipeline (the paper pipeline with its last two passes swapped — the
canonical one-option suffix tweak), and then again through a
:class:`~repro.validator.watch.Revalidator` primed with a full paper
pipeline run — so the measured incremental cost is exactly what a
watch-mode re-validation after the tweak pays.  The artifact records
both runs' deterministic work counters (nodes built, nodes created, rule
invocations, normalize runs), the record-signature parity verdict, the
reuse telemetry (pairs adopted unchanged, retained subgraph nodes
reused) and the aggregate savings percentages.

``benchmarks/perf_guard.py`` gates the committed artifact: incremental
revalidation must do **at least 70% fewer rule invocations and 70% fewer
node builds** than the cold re-run (summed over all corpora) and the
records must be signature-identical.

Counters are deterministic for a fixed ``PYTHONHASHSEED`` (structural
signatures hash strings, and φ-branch orderings follow them), so the
script re-executes itself with ``PYTHONHASHSEED=0`` unless the caller
already pinned one — artifacts and baselines are always comparable.

Run with::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import os
import pathlib
import sys


from repro.bench import TWEAKED_PIPELINE, format_table, incremental_comparison
from repro.transforms.pass_manager import PAPER_PIPELINE


def _ensure_pinned_hash_seed() -> None:
    """Re-exec under ``PYTHONHASHSEED=0`` so counters are reproducible.

    Only ever called from the ``__main__`` guard — the pytest benchmark
    harness imports every ``bench_*.py`` file, and an import-time exec
    would restart the whole collecting process.
    """
    if os.environ.get("PYTHONHASHSEED") is None:
        environment = dict(os.environ, PYTHONHASHSEED="0")
        os.execve(sys.executable, [sys.executable, *sys.argv], environment)


#: The counters the perf guard gates on (summed over all corpora).
COUNTER_KEYS = ("nodes_built", "nodes_created", "rule_invocations",
                "normalize_runs")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default: 0.2, matching the "
                             "chain-graph artifact's primary scale)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/incremental.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    rows = incremental_comparison(scale=args.scale)
    totals = {"cold": {key: 0 for key in COUNTER_KEYS},
              "incremental": {key: 0 for key in COUNTER_KEYS}}
    reuse = {"pairs_skipped_unchanged": 0, "subgraph_nodes_reused": 0,
             "chain_extensions": 0, "chain_fallbacks": 0}
    parity_failures = []
    for row in rows:
        for key in COUNTER_KEYS:
            totals["cold"][key] += int(row[f"cold_{key}"])
            totals["incremental"][key] += int(row[f"incremental_{key}"])
        for key in reuse:
            reuse[key] += int(row[key])
        if not row["identical"]:
            parity_failures.append(
                f"{row['benchmark']}: {', '.join(row['mismatches'])}")
    savings = {}
    for key in COUNTER_KEYS:
        cold_value = totals["cold"][key]
        warm_value = totals["incremental"][key]
        savings[f"{key}_saved_pct"] = round(
            100.0 * (1.0 - warm_value / cold_value), 1) if cold_value else 0.0

    table_columns = ("benchmark", "transformed", "identical",
                     "pairs_skipped_unchanged", "subgraph_nodes_reused",
                     "cold_nodes_built", "incremental_nodes_built",
                     "nodes_built_saved_pct",
                     "cold_rule_invocations", "incremental_rule_invocations",
                     "rule_invocations_saved_pct")
    print(format_table([{k: row[k] for k in table_columns} for row in rows],
                       title=f"Incremental revalidation vs cold re-run "
                             f"(scale {args.scale:g}, suffix tweak)"))
    print(f"overall savings: "
          f"nodes built {savings['nodes_built_saved_pct']}%, "
          f"nodes created {savings['nodes_created_saved_pct']}%, "
          f"rule invocations {savings['rule_invocations_saved_pct']}%, "
          f"normalize runs {savings['normalize_runs_saved_pct']}%")
    print(f"reuse: {reuse['pairs_skipped_unchanged']} pairs adopted "
          f"unchanged, {reuse['subgraph_nodes_reused']} retained nodes "
          f"reused, {reuse['chain_extensions']} chain extensions, "
          f"{reuse['chain_fallbacks']} fallbacks\n")

    payload = {
        "schema": 1,
        "scale": args.scale,
        "hash_seed": os.environ.get("PYTHONHASHSEED"),
        "passes": list(PAPER_PIPELINE),
        "tweaked": list(TWEAKED_PIPELINE),
        "rows": rows,
        "totals": totals,
        "savings": savings,
        "reuse": reuse,
        "identical": not parity_failures,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {args.out}")

    if parity_failures:
        print("\nINCREMENTAL PARITY REGRESSION:", file=sys.stderr)
        for line in parity_failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    _ensure_pinned_hash_seed()
    raise SystemExit(main())
