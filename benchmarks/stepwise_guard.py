#!/usr/bin/env python3
"""Strategy-regression guard: stepwise must accept everything whole accepts.

Runs the :func:`repro.bench.stepwise_comparison` experiment over all
twelve corpora (at a small scale by default, so CI stays fast), writes the
full per-benchmark comparison to a JSON artifact, and exits non-zero if
any corpus function validated under ``strategy="whole"`` but not under
``strategy="stepwise"`` — the whole-query fallback inside the stepwise
strategy makes that impossible by construction, so a violation means the
strategy plumbing regressed.

Run with::

    PYTHONPATH=src python benchmarks/stepwise_guard.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import pathlib
import sys

from repro.bench import format_table, stepwise_comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: tiny, CI-friendly)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/stepwise_comparison.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    rows = stepwise_comparison(scale=args.scale)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 1, "scale": args.scale, "rows": rows}
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    table_columns = ("benchmark", "transformed", "whole_validated", "stepwise_validated",
                     "bisect_validated", "superset_ok", "stepwise_partial",
                     "stepwise_prefix_steps", "analyses_computed", "analyses_reused")
    print(format_table([{k: row[k] for k in table_columns} for row in rows],
                       title=f"Stepwise vs whole vs bisect (scale {args.scale})"))
    print(f"artifact: {args.out}")

    failures = []
    for row in rows:
        if not row["superset_ok"]:
            failures.append(
                f"{row['benchmark']}: validated under whole but not stepwise: "
                f"{', '.join(row['superset_violations'])}"
            )
        # Reuse is only guaranteed when some function has >= 2 changed
        # steps (interior checkpoints are consumed twice); single-step
        # corpora can legitimately show zero reuse.
        if row["analyses_reused"] == 0 and row["multi_step_functions"]:
            failures.append(
                f"{row['benchmark']}: analysis cache saw no reuse in stepwise mode"
            )
    if failures:
        print("\nSTRATEGY REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nstrategy guard OK: stepwise accepted a superset of whole on every corpus")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
