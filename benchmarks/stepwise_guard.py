#!/usr/bin/env python3
"""Strategy-regression guard: stepwise must accept everything whole accepts.

Runs the :func:`repro.bench.stepwise_comparison` experiment over all
twelve corpora (at a small scale by default, so CI stays fast), writes the
full per-benchmark comparison to a JSON artifact, and exits non-zero if
any corpus function validated under ``strategy="whole"`` but not under
``strategy="stepwise"`` — the whole-query fallback inside the stepwise
strategy makes that impossible by construction, so a violation means the
strategy plumbing regressed.

With ``--shard-concurrency N`` (default 2; 0 disables) it additionally
runs the :func:`repro.bench.sharded_comparison` experiment over all
twelve corpora and fails unless the process-pool-sharded stepwise driver
produced *identical* per-function record signatures (verdict, reason,
blame, kept prefix, per-pass verdicts) to the serial driver.

With ``--chain-parity`` (the default; ``--no-chain-parity`` disables) it
also runs the :func:`repro.bench.chain_comparison` experiment over all
twelve corpora and fails unless the chain-shared-graph stepwise path
(``config.chain_graphs``, the default execution mode) produced record
signatures identical to the per-pair oracle with ``chain_graphs=False``
— chain graphs must change how fast validation runs, never what it
decides.

With ``--incremental-parity`` (the default; ``--no-incremental-parity``
disables) it also runs the :func:`repro.bench.incremental_comparison`
experiment over all twelve corpora and fails unless a warm
:class:`~repro.validator.watch.Revalidator` re-run after the canonical
pipeline suffix tweak produced record signatures identical to a cold
sweep of the tweaked pipeline — incremental revalidation must change how
much work re-validation does, never what it decides.

With ``--executor-parity`` (the default; ``--no-executor-parity``
disables) it additionally runs the
:func:`repro.bench.executor_comparison` experiment over all twelve
corpora and fails unless the ``serial``, ``pool``, ``wave`` and
``steal`` scheduling backends produced identical per-function record
signatures — a backend may change where and in what order queries run,
never what they decide.  The table also reports the wave backend's
speculative savings (validated pairs avoided by cancelling the doomed
later waves of rejected functions) and the steal backend's deque
traffic (``items_stolen`` / ``steal_attempts``).  With ``--tcp-workers
N`` (N > 0) the parity sweep grows a fifth leg: the steal backend over
its TCP transport with N loopback remote worker subprocesses, run cold
and then warm through the coordinator's served proof store — both legs
must also match serial byte for byte.

Run with::

    PYTHONPATH=src python benchmarks/stepwise_guard.py [--scale 0.2] [--out FILE]
"""

import argparse
import json
import pathlib
import sys

from repro.bench import (
    chain_comparison,
    executor_comparison,
    format_table,
    incremental_comparison,
    sharded_comparison,
    stepwise_comparison,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: tiny, CI-friendly)")
    parser.add_argument("--shard-concurrency", type=int, default=2,
                        help="workers for the serial-vs-sharded parity check "
                             "(0 skips the check)")
    parser.add_argument("--chain-parity", dest="chain_parity",
                        action="store_true", default=True,
                        help="check chain-graph vs per-pair record parity "
                             "(the default)")
    parser.add_argument("--no-chain-parity", dest="chain_parity",
                        action="store_false",
                        help="skip the chain-parity check")
    parser.add_argument("--incremental-parity", dest="incremental_parity",
                        action="store_true", default=True,
                        help="check warm-revalidation vs cold record parity "
                             "(the default)")
    parser.add_argument("--no-incremental-parity", dest="incremental_parity",
                        action="store_false",
                        help="skip the incremental-parity check")
    parser.add_argument("--executor-parity", dest="executor_parity",
                        action="store_true", default=True,
                        help="check serial/pool/wave/steal backend record "
                             "parity (the default)")
    parser.add_argument("--no-executor-parity", dest="executor_parity",
                        action="store_false",
                        help="skip the executor-parity check")
    parser.add_argument("--tcp-workers", type=int, default=0,
                        help="also run the steal backend over TCP with this "
                             "many loopback remote workers, cold and warm "
                             "(0, the default, skips the TCP legs)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/stepwise_comparison.json"),
                        help="where to write the JSON artifact")
    args = parser.parse_args()

    rows = stepwise_comparison(scale=args.scale)
    shard_rows = []
    if args.shard_concurrency > 0:
        shard_rows = sharded_comparison(scale=args.scale,
                                        concurrency=args.shard_concurrency)
    chain_rows = []
    if args.chain_parity:
        chain_rows = chain_comparison(scale=args.scale)
    incremental_rows = []
    if args.incremental_parity:
        incremental_rows = incremental_comparison(scale=args.scale)
    executor_rows = []
    if args.executor_parity:
        executor_rows = executor_comparison(
            scale=args.scale, concurrency=max(2, args.shard_concurrency),
            tcp_workers=args.tcp_workers)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 7, "scale": args.scale, "rows": rows,
               "tcp_workers": args.tcp_workers,
               "shard_concurrency": args.shard_concurrency,
               "shard_rows": shard_rows,
               "chain_parity": args.chain_parity,
               "chain_rows": chain_rows,
               "incremental_parity": args.incremental_parity,
               "incremental_rows": incremental_rows,
               "executor_parity": args.executor_parity,
               "executor_rows": executor_rows}
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    table_columns = ("benchmark", "transformed", "whole_validated", "stepwise_validated",
                     "bisect_validated", "superset_ok", "stepwise_partial",
                     "stepwise_prefix_steps", "analyses_computed", "analyses_reused")
    print(format_table([{k: row[k] for k in table_columns} for row in rows],
                       title=f"Stepwise vs whole vs bisect (scale {args.scale})"))
    print(f"artifact: {args.out}")

    failures = []
    for row in rows:
        if not row["superset_ok"]:
            failures.append(
                f"{row['benchmark']}: validated under whole but not stepwise: "
                f"{', '.join(row['superset_violations'])}"
            )
        # Reuse is only guaranteed when some function has >= 2 changed
        # steps (interior checkpoints are consumed twice); single-step
        # corpora can legitimately show zero reuse.
        if row["analyses_reused"] == 0 and row["multi_step_functions"]:
            failures.append(
                f"{row['benchmark']}: analysis cache saw no reuse in stepwise mode"
            )
    if shard_rows:
        shard_columns = ("benchmark", "transformed", "identical", "distinct_pairs",
                        "pooled_pairs", "workers", "serial_time_s", "sharded_time_s")
        print()
        print(format_table([{k: row[k] for k in shard_columns} for row in shard_rows],
                           title=f"Serial vs sharded stepwise "
                                 f"({args.shard_concurrency} workers)"))
        for row in shard_rows:
            if not row["identical"]:
                failures.append(
                    f"{row['benchmark']}: sharded records diverged from serial for: "
                    f"{', '.join(row['mismatches'])}"
                )
    if chain_rows:
        chain_columns = ("benchmark", "transformed", "identical", "chains",
                         "chain_fallbacks", "nodes_built_saved_pct",
                         "rule_invocations_saved_pct", "per_pair_time_s",
                         "chain_time_s")
        print()
        print(format_table([{k: row[k] for k in chain_columns} for row in chain_rows],
                           title="Chain-shared graphs vs per-pair oracle"))
        for row in chain_rows:
            if not row["identical"]:
                failures.append(
                    f"{row['benchmark']}: chain-graph records diverged from "
                    f"per-pair for: {', '.join(row['mismatches'])}"
                )
    if incremental_rows:
        incremental_columns = ("benchmark", "transformed", "identical",
                               "pairs_skipped_unchanged",
                               "subgraph_nodes_reused", "chain_fallbacks",
                               "rule_invocations_saved_pct",
                               "nodes_built_saved_pct", "cold_time_s",
                               "incremental_time_s")
        print()
        print(format_table([{k: row[k] for k in incremental_columns}
                            for row in incremental_rows],
                           title="Warm incremental revalidation vs cold re-run"))
        for row in incremental_rows:
            if not row["identical"]:
                failures.append(
                    f"{row['benchmark']}: incremental records diverged from "
                    f"cold for: {', '.join(row['mismatches'])}"
                )
    if executor_rows:
        executor_columns = ("benchmark", "transformed", "identical",
                            "serial_pairs", "wave_pairs", "wave_pairs_saved",
                            "waves", "waves_cancelled", "steal_pairs",
                            "items_stolen", "steal_attempts", "serial_time_s",
                            "wave_time_s", "steal_time_s")
        if args.tcp_workers > 0:
            executor_columns += ("tcp_pairs", "tcp_warm_pairs",
                                 "tcp_workers_joined", "tcp_time_s",
                                 "tcp_warm_time_s")
        print()
        print(format_table([{k: row[k] for k in executor_columns}
                            for row in executor_rows],
                           title="Serial vs pool vs wave vs steal scheduling backends"))
        saved = sum(row["wave_pairs_saved"] for row in executor_rows)
        total = sum(row["serial_pairs"] for row in executor_rows)
        stolen = sum(row["items_stolen"] for row in executor_rows)
        attempts = sum(row["steal_attempts"] for row in executor_rows)
        print(f"wave backend answered {saved} fewer queries than the eager "
              f"schedule ({total} -> {total - saved}); steal backend moved "
              f"{stolen} items across deques in {attempts} steal attempts")
        for row in executor_rows:
            if not row["identical"]:
                failures.append(
                    f"{row['benchmark']}: backend records diverged from "
                    f"serial for: {', '.join(row['mismatches'])}"
                )
    if failures:
        print("\nSTRATEGY REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    message = "strategy guard OK: stepwise accepted a superset of whole on every corpus"
    if shard_rows:
        message += "; sharded records matched serial on every corpus"
    if chain_rows:
        message += "; chain-graph records matched the per-pair oracle on every corpus"
    if incremental_rows:
        message += ("; warm incremental revalidation matched cold records "
                    "on every corpus")
    if executor_rows:
        message += ("; serial/pool/wave/steal backends produced identical "
                    "records on every corpus")
        if args.tcp_workers > 0:
            message += (f"; steal+tcp with {args.tcp_workers} remote workers "
                        f"matched serial cold and warm on every corpus")
    print(f"\n{message}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
