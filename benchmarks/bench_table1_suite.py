"""Table 1 — test-suite information (corpus size, LOC, function counts)."""

from repro.bench import format_table, table1


def test_table1_suite_information(benchmark, bench_scale):
    rows = benchmark(table1, scale=bench_scale)
    print()
    print(format_table(rows, title=f"Table 1 (corpus scale {bench_scale})"))
    assert len(rows) == 12
    by_name = {row["benchmark"]: row for row in rows}
    # The relative ordering of the paper's Table 1 must reproduce:
    # gcc is the largest corpus, lbm/mcf the smallest.
    assert by_name["gcc"]["functions"] == max(row["functions"] for row in rows)
    assert by_name["lbm"]["functions"] <= by_name["sqlite"]["functions"]
    assert by_name["mcf"]["loc"] < by_name["gcc"]["loc"]
