"""Figure 7 — effect of the rewrite rules on validating LICM."""

from repro.bench import figure7, format_grouped_bars


def test_figure7_licm_rule_ablation(benchmark, bench_scale, fast_benchmarks):
    results = benchmark.pedantic(
        figure7, kwargs={"scale": bench_scale, "benchmarks": fast_benchmarks},
        iterations=1, rounds=1,
    )
    print()
    print(format_grouped_bars(results, title="Figure 7 — LICM validation rate"))
    for bench in fast_benchmarks:
        # All rules never validate less than no rules.
        assert results["all rules"][bench] >= results["no rules"][bench]
    # The paper's no-rules baseline is already fairly high (75–80%) because
    # symbolic evaluation hides pure code motion.  Our LICM additionally
    # hoists loads, which need the load/store rules to validate, so the
    # no-rules baseline lands lower here (see EXPERIMENTS.md); it is still
    # clearly non-trivial, and adding the rules recovers most of the gap.
    baseline_avg = sum(results["no rules"].values()) / len(fast_benchmarks)
    full_avg = sum(results["all rules"].values()) / len(fast_benchmarks)
    assert baseline_avg >= 25.0
    assert full_avg >= baseline_avg
