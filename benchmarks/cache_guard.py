#!/usr/bin/env python3
"""Persistent-cache guard: warm corpus sweeps must answer from disk.

Runs the :func:`repro.bench.cache_persistence` experiment — a corpus
sweep of all twelve benchmarks through one persistent
:class:`~repro.validator.cache.ValidationCache` — and enforces the
warm-run acceptance criteria:

* ``--mode cold`` sweeps once against an (empty or pre-existing) cache
  directory and saves it.  CI runs this first and uploads the directory
  as an artifact.
* ``--mode warm`` re-runs the sweep against an existing cache directory
  (CI: the downloaded artifact) and **fails** if the cache-hit rate is
  below ``--min-hit-rate`` (default 0.95).
* ``--mode both`` runs cold then warm in one process and additionally
  fails unless the warm run performed at least 95% fewer equivalence
  checks than the cold run.
* ``--cache-backend {auto,json,sqlite}`` selects the proof-store backend
  (CI runs the cold/warm pair once per backend).  Warm ``sqlite`` runs
  must additionally fault strictly fewer entries than the store holds —
  the lazy-loading criterion.

Every run appends its rows to the JSON artifact given by ``--out``.

Run with::

    PYTHONPATH=src python benchmarks/cache_guard.py --mode both \
        --cache-dir .cache/validation [--scale 0.2] [--concurrency 2]
"""

import argparse
import json
import pathlib
import sys

from repro.bench import cache_persistence, format_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("cold", "warm", "both"), default="both")
    parser.add_argument("--cache-dir", required=True,
                        help="persistent validation-cache directory")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale (default 0.2: tiny, CI-friendly)")
    parser.add_argument("--concurrency", type=int, default=2,
                        help="process-pool width for the sharded sweep")
    parser.add_argument("--strategy", default="stepwise",
                        help="validation strategy for the sweep")
    parser.add_argument("--cache-backend", choices=("auto", "json", "sqlite"),
                        default="auto",
                        help="proof-store backend (auto: sqlite if a .sqlite "
                             "file already exists in --cache-dir, else json)")
    parser.add_argument("--min-hit-rate", type=float, default=0.95,
                        help="minimum warm-run cache-hit rate (default 0.95)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/artifacts/cache_persistence_guard.json"),
                        help="where to write the JSON artifact (distinct from "
                             "bench_cache_persistence.py's cache_persistence.json)")
    args = parser.parse_args()

    from dataclasses import replace

    from repro.validator import DEFAULT_CONFIG

    config = replace(DEFAULT_CONFIG, concurrency=args.concurrency)
    runs = {"cold": ("cold",), "warm": ("warm",), "both": ("cold", "warm")}[args.mode]
    rows = cache_persistence(scale=args.scale, config=config,
                             cache_dir=args.cache_dir, strategy=args.strategy,
                             runs=runs, cache_backend=args.cache_backend)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 2, "scale": args.scale, "strategy": args.strategy,
               "concurrency": args.concurrency, "mode": args.mode,
               "cache_backend": args.cache_backend, "rows": rows}
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(format_table(rows, title=f"Persistent-cache sweep (scale {args.scale}, "
                                   f"strategy {args.strategy})"))
    print(f"artifact: {args.out}")

    failures = []
    by_run = {row["run"]: row for row in rows}
    if args.mode in ("warm", "both"):
        warm = by_run["warm"]
        if warm["hit_rate"] < args.min_hit_rate:
            failures.append(
                f"warm cache-hit rate {warm['hit_rate']:.2%} is below the "
                f"required {args.min_hit_rate:.2%}")
        if warm["backend"] == "sqlite" and warm["disk_loaded"] and \
                warm["store_lazy_loads"] >= warm["disk_loaded"]:
            failures.append(
                f"warm sqlite run faulted {warm['store_lazy_loads']} entries "
                f"out of {warm['disk_loaded']} on disk — lazy faulting should "
                f"touch strictly fewer entries than the store holds")
    if args.mode == "both":
        cold, warm = by_run["cold"], by_run["warm"]
        if cold["checks"] == 0:
            failures.append("cold run performed no equivalence checks — "
                            "the sweep is not exercising the validator")
        elif warm["checks"] > 0.05 * cold["checks"]:
            failures.append(
                f"warm run performed {warm['checks']} equivalence checks vs "
                f"{cold['checks']} cold — less than a 95% reduction")
        if cold["validated"] != warm["validated"]:
            failures.append(
                f"verdicts drifted between runs: {cold['validated']} cold vs "
                f"{warm['validated']} warm validated functions")
    if failures:
        print("\nPERSISTENT-CACHE REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if args.mode == "cold":
        print("\ncold sweep done: cache saved for the warm job")
    else:
        print("\ncache guard OK: warm sweep answered from the persistent cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
